// check-tier-speedup: gates the threaded-code execution tier. Reads a JSON
// report written by `table7_syscall_latency --tier-only --json` and asserts
// the threaded tier beats the tree-walking interpreter on the safe-mode
// syscall-shaped bytecode workload: interpreter latency must be >= 1.4x the
// threaded latency (a deliberately loose threshold — the real speedup on a
// quiet host is 4-7x — so frequency scaling and CI noise never flake it).
//
// Exit codes: 0 = speedup holds, 1 = regression (or malformed report),
// 77 = skipped because the measurement looks too noisy to judge (either
// latency is implausibly small — ctest maps 77 to SKIP via
// SKIP_RETURN_CODE).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

constexpr double kRequiredSpeedup = 1.4;
constexpr int kExitSkip = 77;

// Below this the timer resolution dominates and a ratio of two such numbers
// means nothing; skip rather than fail.
constexpr double kMinCredibleLatencyUs = 0.05;

// Extracts the number following `key` (e.g. "\"value\": ") in `text` starting
// at `from`; returns the position after the match, or std::string::npos.
size_t FindNumber(const std::string& text, const std::string& key,
                  size_t from, double* out) {
  size_t pos = text.find(key, from);
  if (pos == std::string::npos) {
    return std::string::npos;
  }
  pos += key.size();
  char* end = nullptr;
  *out = std::strtod(text.c_str() + pos, &end);
  if (end == text.c_str() + pos) {
    return std::string::npos;
  }
  return pos;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: check-tier-speedup <table7.json>\n");
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "check-tier-speedup: cannot read %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Walk the bytecode_syscall records and pick out the per-tier latencies.
  double interp_us = 0;
  double threaded_us = 0;
  const std::string metric = "\"metric\": \"bytecode_syscall\"";
  for (size_t pos = text.find(metric); pos != std::string::npos;
       pos = text.find(metric, pos + metric.size())) {
    double value = 0;
    size_t after = FindNumber(text, "\"value\": ", pos, &value);
    if (after == std::string::npos) {
      continue;
    }
    size_t mode = text.find("\"mode\": \"", pos);
    if (mode == std::string::npos) {
      continue;
    }
    mode += std::strlen("\"mode\": \"");
    if (text.compare(mode, 11, "tier-interp") == 0) {
      interp_us = value;
    } else if (text.compare(mode, 13, "tier-threaded") == 0) {
      threaded_us = value;
    }
  }
  if (interp_us <= 0 || threaded_us <= 0) {
    std::fprintf(stderr,
                 "check-tier-speedup: report has no bytecode_syscall records "
                 "for both tiers (run table7_syscall_latency --tier-only "
                 "--json)\n");
    return 1;
  }
  if (interp_us < kMinCredibleLatencyUs ||
      threaded_us < kMinCredibleLatencyUs) {
    std::printf(
        "check-tier-speedup: SKIP — latencies %.4f / %.4f us are below the "
        "timer's credible floor (%.2f us); the ratio would be noise\n",
        interp_us, threaded_us, kMinCredibleLatencyUs);
    return kExitSkip;
  }

  double speedup = interp_us / threaded_us;
  std::printf(
      "check-tier-speedup: bytecode syscall workload %.3f -> %.3f us/call "
      "(interpreter -> threaded), speedup %.2fx (required >= %.2fx)\n",
      interp_us, threaded_us, speedup, kRequiredSpeedup);
  if (speedup < kRequiredSpeedup) {
    std::fprintf(stderr,
                 "check-tier-speedup: FAIL — the threaded tier no longer "
                 "pays for itself; did a hot opcode fall back to the "
                 "tree-walking interpreter?\n");
    return 1;
  }
  std::printf("check-tier-speedup: OK\n");
  return 0;
}
