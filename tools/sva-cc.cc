// sva-cc: the SVA safety-checking compiler driver.
//
// Reads a textual SVA module (.sva), runs the safety-checking compiler
// (points-to analysis, metapool inference, check insertion), verifies the
// result, and writes binary bytecode (.svb) ready for the SVM.
//
// Usage:
//   sva-cc input.sva -o output.svb [options]
//
// Options:
//   -o FILE            output bytecode file (default: input with .svb)
//   --emit-text        print the instrumented module instead of bytecode
//   --no-cloning       disable precision cloning (Section 4.8)
//   --no-devirt        disable devirtualization
//   --no-static-elide  keep checks on provably-safe GEPs
//   --whole-program    entire-kernel analysis (no incompleteness)
//   --entry NAME       add a syscall-style entry point (repeatable)
//   --report           print the instrumentation report
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/safety/compiler.h"
#include "src/verifier/typechecker.h"
#include "src/vir/bytecode.h"
#include "src/vir/parser.h"
#include "src/vir/printer.h"
#include "src/vir/structural_verifier.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "sva-cc: %s\n", message.c_str());
  return 1;
}

void PrintReport(const sva::safety::SafetyReport& r) {
  std::printf("metapools:            %llu (%llu TH, %llu complete)\n",
              static_cast<unsigned long long>(r.metapools),
              static_cast<unsigned long long>(r.th_metapools),
              static_cast<unsigned long long>(r.complete_metapools));
  std::printf("registrations:        %llu (+%llu drops)\n",
              static_cast<unsigned long long>(r.reg_obj),
              static_cast<unsigned long long>(r.drop_obj));
  std::printf("bounds checks:        %llu splay + %llu direct (%llu elided "
              "statically)\n",
              static_cast<unsigned long long>(r.bounds_checks),
              static_cast<unsigned long long>(r.direct_bounds_checks),
              static_cast<unsigned long long>(r.elided_bounds_checks));
  std::printf("load-store checks:    %llu (%llu elided on TH pools, %llu "
              "reduced on incomplete)\n",
              static_cast<unsigned long long>(r.ls_checks),
              static_cast<unsigned long long>(r.elided_th_ls_checks),
              static_cast<unsigned long long>(r.reduced_ls_checks));
  std::printf("indirect call checks: %llu\n",
              static_cast<unsigned long long>(r.indirect_checks));
  std::printf("stack promotions:     %llu\n",
              static_cast<unsigned long long>(r.stack_promotions));
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  bool emit_text = false;
  bool report = false;
  sva::safety::SafetyCompilerOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--emit-text") {
      emit_text = true;
    } else if (arg == "--no-cloning") {
      options.run_cloning = false;
    } else if (arg == "--no-devirt") {
      options.run_devirt = false;
    } else if (arg == "--no-static-elide") {
      options.elide_static_safe_bounds = false;
    } else if (arg == "--whole-program") {
      options.analysis.whole_program = true;
    } else if (arg == "--entry" && i + 1 < argc) {
      options.analysis.entry_points.push_back(argv[++i]);
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: sva-cc input.sva -o output.svb "
                  "[--emit-text] [--report]\n"
                  "       [--no-cloning] [--no-devirt] [--no-static-elide]\n"
                  "       [--whole-program] [--entry NAME]...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown option " + arg);
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    return Fail("no input file (try --help)");
  }
  if (output.empty()) {
    output = input;
    size_t dot = output.rfind('.');
    if (dot != std::string::npos) {
      output.resize(dot);
    }
    output += ".svb";
  }

  std::ifstream in(input);
  if (!in) {
    return Fail("cannot open " + input);
  }
  std::ostringstream source;
  source << in.rdbuf();

  auto module = sva::vir::ParseModule(source.str());
  if (!module.ok()) {
    return Fail(module.status().ToString());
  }
  auto compile = sva::safety::RunSafetyCompiler(**module, options);
  if (!compile.ok()) {
    return Fail(compile.status().ToString());
  }
  if (sva::Status s = sva::vir::VerifyModule(**module); !s.ok()) {
    return Fail("post-compile verification failed: " + s.ToString());
  }
  if (sva::Status s = sva::verifier::TypeCheckOrError(**module); !s.ok()) {
    return Fail("metapool type check failed: " + s.ToString());
  }
  if (report) {
    PrintReport(*compile);
  }
  if (emit_text) {
    std::printf("%s", sva::vir::PrintModule(**module).c_str());
    return 0;
  }
  std::vector<uint8_t> bytes = sva::vir::WriteBytecode(**module);
  std::ofstream out(output, std::ios::binary);
  if (!out) {
    return Fail("cannot write " + output);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("sva-cc: wrote %zu bytes to %s (digest %llu)\n", bytes.size(),
              output.c_str(),
              static_cast<unsigned long long>(sva::vir::DigestBytes(bytes)));
  return 0;
}
