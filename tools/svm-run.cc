// svm-run: loads SVA bytecode into the Secure Virtual Machine and executes
// an entry point with the run-time checks live.
//
// Usage:
//   svm-run module.svb [--entry NAME] [--arg N]... [--no-checks] [--stats]
//
// Exit status: 0 on clean execution, 2 on a safety violation, 1 on other
// errors — usable from scripts and CI.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/svm/svm.h"
#include "src/vir/bytecode.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "svm-run: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string entry = "main";
  std::vector<uint64_t> args;
  bool stats = false;
  sva::svm::SvmOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--entry" && i + 1 < argc) {
      entry = argv[++i];
    } else if (arg == "--arg" && i + 1 < argc) {
      args.push_back(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--no-checks") {
      options.interp.enforce_checks = false;
    } else if (arg == "--no-cache") {
      options.interp.use_lookup_cache = false;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: svm-run module.svb [--entry NAME] [--arg N]... "
                  "[--no-checks] [--no-cache] [--stats]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown option " + arg);
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    return Fail("no bytecode file (try --help)");
  }
  std::ifstream in(input, std::ios::binary);
  if (!in) {
    return Fail("cannot open " + input);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());

  sva::svm::SecureVirtualMachine vm(options);
  auto loaded = vm.LoadBytecode(bytes);
  if (!loaded.ok()) {
    return Fail("load rejected: " + loaded.status().ToString());
  }
  auto result = (*loaded)->Run(entry, args);
  if (stats) {
    const auto& check_stats = (*loaded)->pools().stats();
    std::fprintf(stderr,
                 "svm-run: %llu instructions, %llu checks performed, %llu "
                 "failed\n",
                 static_cast<unsigned long long>(result.steps),
                 static_cast<unsigned long long>(
                     check_stats.total_performed()),
                 static_cast<unsigned long long>(check_stats.total_failed()));
    std::fprintf(stderr,
                 "svm-run: lookup cache %llu hits / %llu misses "
                 "(%.1f%% hit rate), %llu splay comparisons\n",
                 static_cast<unsigned long long>(check_stats.cache_hits),
                 static_cast<unsigned long long>(check_stats.cache_misses),
                 100.0 * check_stats.cache_hit_rate(),
                 static_cast<unsigned long long>(
                     check_stats.splay_comparisons));
  }
  if (!result.status.ok()) {
    std::fprintf(stderr, "svm-run: %s\n", result.status.ToString().c_str());
    return result.status.code() == sva::StatusCode::kSafetyViolation ? 2 : 1;
  }
  std::printf("%llu\n", static_cast<unsigned long long>(result.value));
  return 0;
}
