// svm-run: loads SVA bytecode into the Secure Virtual Machine and executes
// an entry point with the run-time checks live.
//
// Usage:
//   svm-run module.svb [--entry NAME] [--arg N]... [--no-checks] [--stats]
//           [--cpus N]
//
// --cpus N runs N replicas of the VM on N worker threads, each bound to a
// virtual CPU, and requires every replica to reach the same result — the
// detection-parity harness for the SMP runtime (concurrency must never
// change what the checks catch).
//
// Exit status: 0 on clean execution, 2 on a safety violation, 1 on other
// errors — usable from scripts and CI.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/smp/percpu.h"
#include "src/svm/svm.h"
#include "src/vir/bytecode.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "svm-run: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string entry = "main";
  std::vector<uint64_t> args;
  bool stats = false;
  unsigned cpus = 1;
  sva::svm::SvmOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--entry" && i + 1 < argc) {
      entry = argv[++i];
    } else if (arg == "--arg" && i + 1 < argc) {
      args.push_back(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--no-checks") {
      options.interp.enforce_checks = false;
    } else if (arg == "--no-cache") {
      options.interp.use_lookup_cache = false;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--cpus" && i + 1 < argc) {
      cpus = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
      if (cpus == 0) {
        cpus = 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: svm-run module.svb [--entry NAME] [--arg N]... "
                  "[--no-checks] [--no-cache] [--stats] [--cpus N]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown option " + arg);
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    return Fail("no bytecode file (try --help)");
  }
  std::ifstream in(input, std::ios::binary);
  if (!in) {
    return Fail("cannot open " + input);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());

  // One VM replica per virtual CPU. cpus == 1 is the plain single-VM path;
  // cpus > 1 runs every replica on its own worker thread and then insists
  // that all of them agree — concurrency in the check runtime must never
  // change the program's result or what the checks detect.
  struct ReplicaOutcome {
    bool load_ok = false;
    std::string load_error;
    sva::svm::ExecResult result;
  };
  std::vector<sva::svm::SecureVirtualMachine> vms;
  vms.reserve(cpus);
  for (unsigned c = 0; c < cpus; ++c) {
    vms.emplace_back(options);
  }
  std::vector<ReplicaOutcome> outcomes(cpus);
  std::vector<std::unique_ptr<sva::svm::LoadedModule>> modules(cpus);
  auto run_replica = [&](unsigned c) {
    sva::smp::ScopedCpu bind(c);
    auto loaded = vms[c].LoadBytecode(bytes);
    if (!loaded.ok()) {
      outcomes[c].load_error = loaded.status().ToString();
      return;
    }
    outcomes[c].load_ok = true;
    modules[c] = std::move(*loaded);
    outcomes[c].result = modules[c]->Run(entry, args);
  };
  if (cpus == 1) {
    run_replica(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(cpus);
    for (unsigned c = 0; c < cpus; ++c) {
      workers.emplace_back(run_replica, c);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }

  if (!outcomes[0].load_ok) {
    return Fail("load rejected: " + outcomes[0].load_error);
  }
  for (unsigned c = 1; c < cpus; ++c) {
    if (outcomes[c].load_ok != outcomes[0].load_ok ||
        outcomes[c].result.status.code() != outcomes[0].result.status.code() ||
        (outcomes[c].result.status.ok() &&
         outcomes[c].result.value != outcomes[0].result.value)) {
      std::fprintf(stderr,
                   "svm-run: replica divergence: cpu 0 -> %s value %llu, "
                   "cpu %u -> %s value %llu\n",
                   outcomes[0].result.status.ToString().c_str(),
                   static_cast<unsigned long long>(outcomes[0].result.value),
                   c, outcomes[c].result.status.ToString().c_str(),
                   static_cast<unsigned long long>(outcomes[c].result.value));
      return 1;
    }
  }
  auto result = outcomes[0].result;
  if (stats) {
    const auto& check_stats = modules[0]->pools().stats();
    std::fprintf(stderr,
                 "svm-run: %llu instructions, %llu checks performed, %llu "
                 "failed\n",
                 static_cast<unsigned long long>(result.steps),
                 static_cast<unsigned long long>(
                     check_stats.total_performed()),
                 static_cast<unsigned long long>(check_stats.total_failed()));
    std::fprintf(stderr,
                 "svm-run: lookup cache %llu hits / %llu misses "
                 "(%.1f%% hit rate), %llu splay comparisons\n",
                 static_cast<unsigned long long>(check_stats.cache_hits),
                 static_cast<unsigned long long>(check_stats.cache_misses),
                 100.0 * check_stats.cache_hit_rate(),
                 static_cast<unsigned long long>(
                     check_stats.splay_comparisons));
  }
  if (!result.status.ok()) {
    std::fprintf(stderr, "svm-run: %s\n", result.status.ToString().c_str());
    return result.status.code() == sva::StatusCode::kSafetyViolation ? 2 : 1;
  }
  std::printf("%llu\n", static_cast<unsigned long long>(result.value));
  return 0;
}
