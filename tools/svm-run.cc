// svm-run: loads SVA bytecode into the Secure Virtual Machine and executes
// an entry point with the run-time checks live.
//
// Usage:
//   svm-run module.svb [--entry NAME] [--arg N]... [--no-checks] [--stats]
//           [--cpus N] [--tier interp|threaded]
//
// --tier selects the execution engine (default threaded); both tiers share
// semantics and checks, so the only visible difference should be speed —
// --stats reports which tier actually dispatched what.
//
// --cpus N runs N replicas of the VM on N worker threads, each bound to a
// virtual CPU, and requires every replica to reach the same result — the
// detection-parity harness for the SMP runtime (concurrency must never
// change what the checks catch).
//
// Exit status: 0 on clean execution, 2 on a safety violation, 1 on other
// errors — usable from scripts and CI.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/runtime/metapool_runtime.h"
#include "src/smp/percpu.h"
#include "src/svm/svm.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/metrics.h"
#include "src/trace/profiler.h"
#include "src/trace/trace.h"
#include "src/vir/bytecode.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "svm-run: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string entry = "main";
  std::vector<uint64_t> args;
  bool stats = false;
  std::string trace_out;
  std::string profile_out;
  unsigned cpus = 1;
  sva::svm::SvmOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--entry" && i + 1 < argc) {
      entry = argv[++i];
    } else if (arg == "--arg" && i + 1 < argc) {
      args.push_back(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--tier" && i + 1 < argc) {
      std::string tier = argv[++i];
      if (tier == "interp") {
        options.interp.tier = sva::svm::ExecTier::kInterp;
      } else if (tier == "threaded") {
        options.interp.tier = sva::svm::ExecTier::kThreaded;
      } else {
        return Fail("unknown tier " + tier + " (want interp|threaded)");
      }
    } else if (arg.rfind("--tier=", 0) == 0) {
      std::string tier = arg.substr(7);
      if (tier == "interp") {
        options.interp.tier = sva::svm::ExecTier::kInterp;
      } else if (tier == "threaded") {
        options.interp.tier = sva::svm::ExecTier::kThreaded;
      } else {
        return Fail("unknown tier " + tier + " (want interp|threaded)");
      }
    } else if (arg == "--no-checks") {
      options.interp.enforce_checks = false;
    } else if (arg == "--no-cache") {
      options.interp.use_lookup_cache = false;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile_out = arg.substr(10);
    } else if (arg == "--cpus" && i + 1 < argc) {
      cpus = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
      if (cpus == 0) {
        cpus = 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: svm-run module.svb [--entry NAME] [--arg N]... "
                  "[--no-checks] [--no-cache] [--stats] [--cpus N] "
                  "[--tier interp|threaded] [--trace-out FILE] "
                  "[--profile FILE]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown option " + arg);
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    return Fail("no bytecode file (try --help)");
  }
  std::ifstream in(input, std::ios::binary);
  if (!in) {
    return Fail("cannot open " + input);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());

  // One VM replica per virtual CPU. cpus == 1 is the plain single-VM path;
  // cpus > 1 runs every replica on its own worker thread and then insists
  // that all of them agree — concurrency in the check runtime must never
  // change the program's result or what the checks detect.
  struct ReplicaOutcome {
    bool load_ok = false;
    std::string load_error;
    sva::svm::ExecResult result;
  };
  // Tracing wraps the whole run (every replica records into its own
  // per-CPU ring); the rings are drained into one Chrome trace at exit.
  if (!trace_out.empty()) {
    sva::trace::Tracer::Get().Enable(sva::trace::kModeFull);
  }
  // Profiling wraps the whole run the same way: the free-running sampler
  // interrupts every replica CPU and attributes samples to guest functions
  // via the execution tiers' frame hooks.
  if (!profile_out.empty()) {
    sva::trace::Profiler::Options popts;
    popts.num_cpus = cpus;
    if (!sva::trace::Profiler::Get().Start(popts)) {
      return Fail("cannot start profiler");
    }
  }

  std::vector<sva::svm::SecureVirtualMachine> vms;
  vms.reserve(cpus);
  for (unsigned c = 0; c < cpus; ++c) {
    vms.emplace_back(options);
  }
  std::vector<ReplicaOutcome> outcomes(cpus);
  std::vector<std::unique_ptr<sva::svm::LoadedModule>> modules(cpus);
  auto run_replica = [&](unsigned c) {
    sva::smp::ScopedCpu bind(c);
    auto loaded = vms[c].LoadBytecode(bytes);
    if (!loaded.ok()) {
      outcomes[c].load_error = loaded.status().ToString();
      return;
    }
    outcomes[c].load_ok = true;
    modules[c] = std::move(*loaded);
    outcomes[c].result = modules[c]->Run(entry, args);
  };
  if (cpus == 1) {
    run_replica(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(cpus);
    for (unsigned c = 0; c < cpus; ++c) {
      workers.emplace_back(run_replica, c);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }

  if (!outcomes[0].load_ok) {
    return Fail("load rejected: " + outcomes[0].load_error);
  }
  for (unsigned c = 1; c < cpus; ++c) {
    if (outcomes[c].load_ok != outcomes[0].load_ok ||
        outcomes[c].result.status.code() != outcomes[0].result.status.code() ||
        (outcomes[c].result.status.ok() &&
         outcomes[c].result.value != outcomes[0].result.value)) {
      std::fprintf(stderr,
                   "svm-run: replica divergence: cpu 0 -> %s value %llu, "
                   "cpu %u -> %s value %llu\n",
                   outcomes[0].result.status.ToString().c_str(),
                   static_cast<unsigned long long>(outcomes[0].result.value),
                   c, outcomes[c].result.status.ToString().c_str(),
                   static_cast<unsigned long long>(outcomes[c].result.value));
      return 1;
    }
  }
  auto result = outcomes[0].result;
  if (!profile_out.empty()) {
    sva::trace::Profiler& prof = sva::trace::Profiler::Get();
    prof.Stop();
    if (!prof.WriteFolded(profile_out)) {
      return Fail("cannot write profile to " + profile_out);
    }
    sva::trace::Profiler::Stats pstats = prof.stats();
    std::fprintf(stderr,
                 "svm-run: wrote folded stacks to %s (%llu samples, %llu "
                 "lost, %llu truncated)\n",
                 profile_out.c_str(),
                 static_cast<unsigned long long>(pstats.samples),
                 static_cast<unsigned long long>(pstats.lost),
                 static_cast<unsigned long long>(pstats.stacks_truncated));
    for (const auto& [stack, count] : prof.TopStacks(5)) {
      std::fprintf(stderr, "svm-run:   %8llu  %s\n",
                   static_cast<unsigned long long>(count), stack.c_str());
    }
  }
  if (!trace_out.empty()) {
    sva::trace::Tracer& tracer = sva::trace::Tracer::Get();
    tracer.Disable();
    std::vector<sva::trace::Event> events = tracer.Drain();
    sva::Status written = sva::trace::WriteChromeTrace(trace_out, events);
    if (!written.ok()) {
      return Fail("trace write failed: " + written.ToString());
    }
    std::fprintf(stderr,
                 "svm-run: wrote %zu trace events to %s (%llu lost)\n",
                 events.size(), trace_out.c_str(),
                 static_cast<unsigned long long>(tracer.events_lost()));
  }
  if (stats) {
    // One aggregated CheckStats table across every replica's runtime: each
    // replica has its own MetaPoolRuntime whose stats() already folds its
    // SMP shards; sum those per-replica aggregates, then break the
    // fast-path counters out per metapool (summed across replicas by pool
    // name, since the replicas run identical programs).
    sva::runtime::CheckStats total;
    struct PoolRow {
      uint64_t live = 0, hits = 0, misses = 0, rotations = 0;
    };
    std::map<std::string, PoolRow> by_pool;
    for (unsigned c = 0; c < cpus; ++c) {
      const auto& cs = modules[c]->pools().stats();
      total.bounds_performed += cs.bounds_performed;
      total.bounds_failed += cs.bounds_failed;
      total.loadstore_performed += cs.loadstore_performed;
      total.loadstore_failed += cs.loadstore_failed;
      total.indirect_performed += cs.indirect_performed;
      total.indirect_failed += cs.indirect_failed;
      total.frees_checked += cs.frees_checked;
      total.frees_failed += cs.frees_failed;
      total.reduced_checks += cs.reduced_checks;
      total.registrations += cs.registrations;
      total.drops += cs.drops;
      total.cache_hits += cs.cache_hits;
      total.cache_misses += cs.cache_misses;
      total.splay_comparisons += cs.splay_comparisons;
      total.splay_rotations += cs.splay_rotations;
      for (const auto& [name, pool] : modules[c]->pools().pools()) {
        PoolRow& row = by_pool[name];
        row.live += pool->live_objects();
        row.hits += pool->cache_hits();
        row.misses += pool->cache_misses();
        row.rotations += pool->rotations();
      }
    }
    std::fprintf(stderr,
                 "svm-run: %llu instructions/replica, %u replica(s)\n",
                 static_cast<unsigned long long>(result.steps), cpus);
    const auto& tiers = sva::trace::TierCounters::Get();
    std::fprintf(
        stderr,
        "svm-run: tier dispatch: threaded %llu fns / %llu ops, interp "
        "%llu fns / %llu ops, %llu fallback fn(s)\n",
        static_cast<unsigned long long>(tiers.threaded_fns.load()),
        static_cast<unsigned long long>(tiers.threaded_ops.load()),
        static_cast<unsigned long long>(tiers.interp_fns.load()),
        static_cast<unsigned long long>(tiers.interp_ops.load()),
        static_cast<unsigned long long>(tiers.fallback_fns.load()));
    std::fprintf(stderr,
                 "svm-run: %llu checks performed (%llu bounds, %llu "
                 "load/store, %llu indirect, %llu frees), %llu failed, "
                 "%llu elided\n",
                 static_cast<unsigned long long>(total.total_performed()),
                 static_cast<unsigned long long>(total.bounds_performed),
                 static_cast<unsigned long long>(total.loadstore_performed),
                 static_cast<unsigned long long>(total.indirect_performed),
                 static_cast<unsigned long long>(total.frees_checked),
                 static_cast<unsigned long long>(total.total_failed()),
                 static_cast<unsigned long long>(total.reduced_checks));
    std::fprintf(stderr,
                 "svm-run: %llu registrations, %llu drops; lookup cache "
                 "%llu/%llu (%.1f%% hit rate), %llu comparisons, %llu "
                 "rotations\n",
                 static_cast<unsigned long long>(total.registrations),
                 static_cast<unsigned long long>(total.drops),
                 static_cast<unsigned long long>(total.cache_hits),
                 static_cast<unsigned long long>(total.cache_lookups()),
                 100.0 * total.cache_hit_rate(),
                 static_cast<unsigned long long>(total.splay_comparisons),
                 static_cast<unsigned long long>(total.splay_rotations));
    std::fprintf(stderr,
                 "svm-run: %-24s %10s %12s %12s %9s %10s\n", "metapool",
                 "live", "cache hits", "misses", "hit rate", "rotations");
    for (const auto& [name, row] : by_pool) {
      uint64_t lookups = row.hits + row.misses;
      std::fprintf(
          stderr, "svm-run: %-24s %10llu %12llu %12llu %8.1f%% %10llu\n",
          name.c_str(), static_cast<unsigned long long>(row.live),
          static_cast<unsigned long long>(row.hits),
          static_cast<unsigned long long>(row.misses),
          lookups == 0 ? 0.0 : 100.0 * row.hits / lookups,
          static_cast<unsigned long long>(row.rotations));
    }
  }
  if (!result.status.ok()) {
    std::fprintf(stderr, "svm-run: %s\n", result.status.ToString().c_str());
    return result.status.code() == sva::StatusCode::kSafetyViolation ? 2 : 1;
  }
  std::printf("%llu\n", static_cast<unsigned long long>(result.value));
  return 0;
}
