// trace-validate: checks that a Chrome trace-event JSON file (as written by
// svm-run --trace-out / table6_thttpd_bandwidth --trace-out) is loadable:
// it must parse as JSON, carry a traceEvents array whose entries have the
// required fields for their phase, and keep timestamps monotonically
// non-decreasing within each per-CPU track (tid) — the invariant Perfetto
// needs to lay spans out without overlap artifacts.
//
// Exit 0 when the file validates, 1 otherwise. The parser is a minimal
// recursive-descent JSON reader — no third-party dependency.
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<std::shared_ptr<Object>>(v); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<Array>>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const Object& object() const { return *std::get<std::shared_ptr<Object>>(v); }
  const Array& array() const { return *std::get<std::shared_ptr<Array>>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(Value* out) {
    SkipSpace();
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

  std::string error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s at offset %zu", what.c_str(), pos_);
    error_ = buf;
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue(Value* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      out->v = std::move(s);
      return true;
    }
    if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      if (text_.compare(pos_, std::strlen(word), word) != 0) {
        return Fail("bad literal");
      }
      pos_ += std::strlen(word);
      out->v = (c == 't');
      return true;
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) {
        return Fail("bad literal");
      }
      pos_ += 4;
      out->v = nullptr;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(Value* out) {
    auto obj = std::make_shared<Object>();
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out->v = std::move(obj);
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipSpace();
      Value value;
      if (!ParseValue(&value)) {
        return false;
      }
      (*obj)[std::move(key)] = std::move(value);
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out->v = std::move(obj);
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(Value* out) {
    auto arr = std::make_shared<Array>();
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out->v = std::move(arr);
      return true;
    }
    while (true) {
      SkipSpace();
      Value value;
      if (!ParseValue(&value)) {
        return false;
      }
      arr->push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out->v = std::move(arr);
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Fail("bad escape");
        }
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              return Fail("bad \\u escape");
            }
            out->push_back('?');  // Validation only; no UTF-8 decoding.
            pos_ += 4;
            break;
          default:
            return Fail("bad escape");
        }
        continue;
      }
      out->push_back(c);
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected number");
    }
    out->v = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

int Invalid(const char* path, const std::string& why) {
  std::fprintf(stderr, "trace-validate: %s: %s\n", path, why.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace-validate trace.json\n");
    return 1;
  }
  const char* path = argv[1];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Invalid(path, "cannot open");
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  Parser parser(text);
  Value root;
  if (!parser.Parse(&root)) {
    return Invalid(path, "JSON parse error: " + parser.error());
  }
  if (!root.is_object()) {
    return Invalid(path, "top level is not an object");
  }
  auto it = root.object().find("traceEvents");
  if (it == root.object().end() || !it->second.is_array()) {
    return Invalid(path, "missing traceEvents array");
  }

  // Per-track (tid) timestamps must be monotonic; metadata ("M") events
  // carry no timestamp and are exempt.
  std::map<double, double> last_ts_by_tid;
  size_t spans = 0;
  size_t instants = 0;
  for (size_t i = 0; i < it->second.array().size(); ++i) {
    const Value& ev = it->second.array()[i];
    char where[64];
    std::snprintf(where, sizeof(where), "event %zu", i);
    if (!ev.is_object()) {
      return Invalid(path, std::string(where) + ": not an object");
    }
    const Object& o = ev.object();
    auto field = [&](const char* key) -> const Value* {
      auto f = o.find(key);
      return f == o.end() ? nullptr : &f->second;
    };
    const Value* ph = field("ph");
    if (ph == nullptr || !ph->is_string()) {
      return Invalid(path, std::string(where) + ": missing ph");
    }
    const Value* name = field("name");
    if (name == nullptr || !name->is_string() || name->string().empty()) {
      return Invalid(path, std::string(where) + ": missing name");
    }
    if (field("pid") == nullptr || field("tid") == nullptr) {
      return Invalid(path, std::string(where) + ": missing pid/tid");
    }
    if (ph->string() == "M") {
      continue;  // thread_name metadata: no timestamp.
    }
    const Value* ts = field("ts");
    if (ts == nullptr || !ts->is_number() || ts->number() < 0) {
      return Invalid(path, std::string(where) + ": missing or negative ts");
    }
    if (ph->string() == "X") {
      const Value* dur = field("dur");
      if (dur == nullptr || !dur->is_number() || dur->number() < 0) {
        return Invalid(path,
                       std::string(where) + ": X event without valid dur");
      }
      ++spans;
    } else if (ph->string() == "i") {
      ++instants;
    } else {
      return Invalid(path, std::string(where) + ": unexpected phase '" +
                               ph->string() + "'");
    }
    double tid = field("tid")->number();
    auto [prev, inserted] = last_ts_by_tid.try_emplace(tid, ts->number());
    if (!inserted) {
      if (ts->number() < prev->second) {
        char msg[128];
        std::snprintf(msg, sizeof(msg),
                      "event %zu: ts %.3f goes backwards on tid %.0f", i,
                      ts->number(), tid);
        return Invalid(path, msg);
      }
      prev->second = ts->number();
    }
  }
  std::printf("trace-validate: %s ok (%zu spans, %zu instants, %zu tracks)\n",
              path, spans, instants, last_ts_by_tid.size());
  return 0;
}
