// prof-report: reads a collapsed/folded-stack profile (the --profile
// output of svm-run and the benches: one "frame;frame;... count" line per
// distinct stack) and prints a top-N table of self and total samples per
// frame. Doubles as the CI validator for profiler output: it rejects
// malformed lines and can enforce a minimum attribution rate and sample
// count.
//
// Usage:
//   prof-report FILE [--top N] [--min-attributed FRACTION] [--min-samples N]
//
// Attribution: a sample counts as attributed when its root frame is not
// "unknown" (the profiler's id-0 sentinel for a context it could not
// resolve). --min-attributed 0.95 fails the run if fewer than 95% of
// samples are attributed.
//
// Exit status: 0 ok, 1 on malformed input or a threshold failure.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "prof-report: %s\n", message.c_str());
  return 1;
}

// Splits "a;b;c" into {"a","b","c"}; empty frames are invalid and yield an
// empty result.
std::vector<std::string> SplitFrames(const std::string& stack) {
  std::vector<std::string> frames;
  size_t start = 0;
  while (start <= stack.size()) {
    size_t semi = stack.find(';', start);
    if (semi == std::string::npos) {
      semi = stack.size();
    }
    if (semi == start) {
      return {};  // Empty frame ("a;;b", leading/trailing ';').
    }
    frames.push_back(stack.substr(start, semi - start));
    if (semi == stack.size()) {
      break;
    }
    start = semi + 1;
  }
  return frames;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  size_t top_n = 10;
  double min_attributed = -1.0;
  long long min_samples = -1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top_n = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--min-attributed" && i + 1 < argc) {
      min_attributed = std::strtod(argv[++i], nullptr);
    } else if (arg == "--min-samples" && i + 1 < argc) {
      min_samples = std::strtoll(argv[++i], nullptr, 0);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: prof-report FILE [--top N] "
                  "[--min-attributed FRACTION] [--min-samples N]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown option " + arg);
    } else if (input.empty()) {
      input = arg;
    } else {
      return Fail("more than one input file");
    }
  }
  if (input.empty()) {
    return Fail("no folded-stack file (try --help)");
  }
  std::ifstream in(input);
  if (!in) {
    return Fail("cannot open " + input);
  }

  // Per-frame accounting across all stacks: `self` counts samples whose
  // leaf is the frame, `total` counts samples where the frame appears
  // anywhere in the stack (each frame once per stack, so recursion does
  // not double-count).
  struct FrameRow {
    unsigned long long self = 0;
    unsigned long long total = 0;
  };
  std::map<std::string, FrameRow> rows;
  unsigned long long total_samples = 0;
  unsigned long long attributed_samples = 0;
  size_t line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    // Format: "frame1;frame2;... count" — the count is the text after the
    // last space; everything before it is the stack.
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      return Fail(input + ":" + std::to_string(line_no) +
                  ": expected 'stack count'");
    }
    const std::string stack = line.substr(0, space);
    const std::string count_text = line.substr(space + 1);
    char* end = nullptr;
    unsigned long long count = std::strtoull(count_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || count == 0) {
      return Fail(input + ":" + std::to_string(line_no) +
                  ": bad sample count '" + count_text + "'");
    }
    std::vector<std::string> frames = SplitFrames(stack);
    if (frames.empty()) {
      return Fail(input + ":" + std::to_string(line_no) +
                  ": empty frame in stack '" + stack + "'");
    }
    total_samples += count;
    if (frames.front() != "unknown") {
      attributed_samples += count;
    }
    rows[frames.back()].self += count;
    std::vector<std::string> seen;
    for (const std::string& frame : frames) {
      if (std::find(seen.begin(), seen.end(), frame) == seen.end()) {
        seen.push_back(frame);
        rows[frame].total += count;
      }
    }
  }
  if (total_samples == 0) {
    std::fprintf(stderr, "prof-report: %s: no samples\n", input.c_str());
    return (min_samples > 0 || min_attributed >= 0) ? 1 : 0;
  }

  std::vector<std::pair<std::string, FrameRow>> sorted(rows.begin(),
                                                       rows.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) {
      return a.second.self > b.second.self;
    }
    return a.first < b.first;
  });
  double attribution =
      static_cast<double>(attributed_samples) / total_samples;
  std::printf("%s: %llu samples across %zu distinct frames, %.1f%% "
              "attributed\n",
              input.c_str(), total_samples, rows.size(),
              100.0 * attribution);
  std::printf("%10s %7s %12s %7s  %s\n", "self", "self%", "total", "total%",
              "frame");
  for (size_t i = 0; i < sorted.size() && i < top_n; ++i) {
    const auto& [frame, row] = sorted[i];
    std::printf("%10llu %6.1f%% %12llu %6.1f%%  %s\n", row.self,
                100.0 * row.self / total_samples, row.total,
                100.0 * row.total / total_samples, frame.c_str());
  }

  if (min_samples > 0 &&
      total_samples < static_cast<unsigned long long>(min_samples)) {
    return Fail("only " + std::to_string(total_samples) +
                " samples, need at least " + std::to_string(min_samples));
  }
  if (min_attributed >= 0 && attribution < min_attributed) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "attribution %.3f below required %.3f", attribution,
                  min_attributed);
    return Fail(buf);
  }
  return 0;
}
