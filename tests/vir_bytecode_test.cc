#include <gtest/gtest.h>

#include "src/vir/bytecode.h"
#include "src/vir/parser.h"
#include "src/vir/printer.h"
#include "src/vir/structural_verifier.h"

namespace sva::vir {
namespace {

constexpr const char* kRichModule = R"(
module "rich"

%fib_info = type { i32, i32*, [4 x i8] }
%list = type { %list*, i64 }

metapool MP1 th %fib_info complete
metapool MP2

global @props : [8 x i32] !MP2
global @counter : i64 = 42
extern global @bios : [16 x i8]

declare i8* @kmalloc(i64)

define i32 @work(%fib_info* %fi !MP1, i32 %n) {
entry:
  %cmp = icmp sgt i32 %n, 0
  br i1 %cmp, label %loop, label %exit
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %f = getelementptr %fib_info* %fi, i64 0, i32 0
  store i32 %i, i32* %f
  %i2 = add i32 %i, 1
  %done = icmp sge i32 %i2, %n
  br i1 %done, label %exit, label %loop
exit:
  %raw = call i8* @kmalloc(i64 96)
  call void @pchk.reg.obj(%sva.metapool* @MP2, i8* %raw, i64 96)
  %sel = select i1 %cmp, i32 %n, i32 7
  switch i32 %sel, label %done_bb, [ 1, label %one ]
one:
  ret i32 1
done_bb:
  ret i32 %sel
}
)";

TEST(BytecodeTest, RoundTripPreservesText) {
  auto m1 = ParseModule(kRichModule);
  ASSERT_TRUE(m1.ok()) << m1.status().ToString();
  ASSERT_TRUE(VerifyModule(**m1).ok()) << VerifyModule(**m1).ToString();

  std::vector<uint8_t> bytes = WriteBytecode(**m1);
  ASSERT_GT(bytes.size(), 64u);
  auto m2 = ReadBytecode(bytes);
  ASSERT_TRUE(m2.ok()) << m2.status().ToString();
  EXPECT_TRUE(VerifyModule(**m2).ok()) << VerifyModule(**m2).ToString();

  // Semantics-preserving round trip: re-serializing gives identical bytes.
  std::vector<uint8_t> bytes2 = WriteBytecode(**m2);
  EXPECT_EQ(bytes, bytes2);
}

TEST(BytecodeTest, PreservesMetapoolDeclsAndAnnotations) {
  auto m1 = ParseModule(kRichModule);
  ASSERT_TRUE(m1.ok());
  auto m2 = ReadBytecode(WriteBytecode(**m1));
  ASSERT_TRUE(m2.ok()) << m2.status().ToString();
  const MetapoolDecl* mp1 = (*m2)->FindMetapool("MP1");
  ASSERT_NE(mp1, nullptr);
  EXPECT_TRUE(mp1->type_homogeneous);
  EXPECT_TRUE(mp1->complete);
  ASSERT_NE(mp1->element_type, nullptr);
  EXPECT_EQ(mp1->element_type->ToString(), "%fib_info");
  Function* work = (*m2)->GetFunction("work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ((*m2)->MetapoolOf(work->arg(0)), "MP1");
  EXPECT_EQ((*m2)->MetapoolOf((*m2)->GetGlobal("props")), "MP2");
  EXPECT_EQ((*m2)->GetGlobal("counter")->int_initializer(), 42u);
  EXPECT_TRUE((*m2)->GetGlobal("bios")->is_external());
}

TEST(BytecodeTest, RejectsCorruptedMagic) {
  auto m1 = ParseModule(kRichModule);
  ASSERT_TRUE(m1.ok());
  std::vector<uint8_t> bytes = WriteBytecode(**m1);
  bytes[0] = 'X';
  EXPECT_FALSE(ReadBytecode(bytes).ok());
}

TEST(BytecodeTest, RejectsTruncation) {
  auto m1 = ParseModule(kRichModule);
  ASSERT_TRUE(m1.ok());
  std::vector<uint8_t> bytes = WriteBytecode(**m1);
  // Every truncation point must fail cleanly, never crash.
  for (size_t cut : {size_t{3}, bytes.size() / 4, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ReadBytecode(truncated).ok()) << "cut at " << cut;
  }
}

TEST(BytecodeTest, DigestIsStableAndSensitive) {
  auto m1 = ParseModule(kRichModule);
  ASSERT_TRUE(m1.ok());
  std::vector<uint8_t> bytes = WriteBytecode(**m1);
  uint64_t d1 = DigestBytes(bytes);
  EXPECT_EQ(d1, DigestBytes(bytes));
  std::vector<uint8_t> tampered = bytes;
  tampered[tampered.size() / 2] ^= 0x01;
  EXPECT_NE(d1, DigestBytes(tampered));
}

}  // namespace
}  // namespace sva::vir
