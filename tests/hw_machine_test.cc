#include <gtest/gtest.h>

#include "src/hw/machine.h"

namespace sva::hw {
namespace {

TEST(PhysicalMemoryTest, ReadWriteWidths) {
  PhysicalMemory mem(1 << 16);
  ASSERT_TRUE(mem.Write(0x100, 8, 0x1122334455667788ull).ok());
  EXPECT_EQ(*mem.Read(0x100, 8), 0x1122334455667788ull);
  EXPECT_EQ(*mem.Read(0x100, 4), 0x55667788ull);
  EXPECT_EQ(*mem.Read(0x100, 2), 0x7788ull);
  EXPECT_EQ(*mem.Read(0x100, 1), 0x88ull);
  EXPECT_FALSE(mem.Read(1 << 16, 1).ok());
  EXPECT_FALSE(mem.Write((1 << 16) - 3, 8, 0).ok());
}

TEST(PhysicalMemoryTest, CopyAndFill) {
  PhysicalMemory mem(1 << 16);
  ASSERT_TRUE(mem.Fill(0x200, 0xAB, 64).ok());
  ASSERT_TRUE(mem.Copy(0x400, 0x200, 64).ok());
  EXPECT_EQ(*mem.Read(0x43F, 1), 0xABull);
  EXPECT_FALSE(mem.Copy(0x400, (1 << 16) - 8, 64).ok());
}

TEST(MmuTest, MapTranslateUnmap) {
  Mmu mmu;
  ASSERT_TRUE(mmu.Map(0x10000, 0x3000, kPteWritable).ok());
  auto pa = mmu.Translate(0x10123, /*write=*/false, Privilege::kKernel);
  ASSERT_TRUE(pa.ok());
  EXPECT_EQ(*pa, 0x3123u);
  EXPECT_TRUE(mmu.IsMapped(0x10000));
  ASSERT_TRUE(mmu.Unmap(0x10000).ok());
  EXPECT_FALSE(mmu.Translate(0x10123, false, Privilege::kKernel).ok());
  EXPECT_FALSE(mmu.Unmap(0x10000).ok());
}

TEST(MmuTest, RejectsUnalignedAndFaults) {
  Mmu mmu;
  EXPECT_FALSE(mmu.Map(0x10001, 0x3000, 0).ok());
  EXPECT_FALSE(mmu.Map(0x10000, 0x3001, 0).ok());
  EXPECT_FALSE(mmu.Translate(0x99999, false, Privilege::kKernel).ok());
  EXPECT_GT(mmu.faults(), 0u);
}

TEST(MmuTest, PrivilegeEnforcement) {
  Mmu mmu;
  ASSERT_TRUE(mmu.Map(0x10000, 0x3000, kPteWritable).ok());  // Kernel page.
  ASSERT_TRUE(
      mmu.Map(0x20000, 0x4000, kPteWritable | kPteUser).ok());  // User page.
  EXPECT_TRUE(mmu.Translate(0x10000, false, Privilege::kKernel).ok());
  EXPECT_FALSE(mmu.Translate(0x10000, false, Privilege::kUser).ok());
  EXPECT_TRUE(mmu.Translate(0x20000, true, Privilege::kUser).ok());
}

TEST(MmuTest, ReadOnlyPages) {
  Mmu mmu;
  ASSERT_TRUE(mmu.Map(0x10000, 0x3000, kPteUser).ok());
  EXPECT_TRUE(mmu.Translate(0x10000, false, Privilege::kUser).ok());
  EXPECT_FALSE(mmu.Translate(0x10000, true, Privilege::kUser).ok());
}

TEST(MmuTest, SvmReservedPagesAreProtected) {
  Mmu mmu;
  ASSERT_TRUE(
      mmu.Map(0x50000, 0x5000, kPteWritable | kPteSvmReserved).ok());
  // The kernel cannot remap or unmap SVM pages.
  EXPECT_FALSE(mmu.Map(0x50000, 0x6000, kPteWritable).ok());
  EXPECT_FALSE(mmu.Unmap(0x50000).ok());
  // Only kernel-privilege (SVM) code touches them.
  EXPECT_FALSE(mmu.Translate(0x50000, false, Privilege::kUser).ok());
}

TEST(MmuTest, DoubleMapIsAlreadyExists) {
  Mmu mmu;
  ASSERT_TRUE(mmu.Map(0x10000, 0x3000, kPteWritable).ok());
  Status again = mmu.Map(0x10000, 0x4000, kPteWritable);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  // The original mapping is untouched by the failed attempt.
  EXPECT_EQ(*mmu.Translate(0x10000, false, Privilege::kKernel), 0x3000u);
  // Unmap, then the same vaddr maps fresh.
  ASSERT_TRUE(mmu.Unmap(0x10000).ok());
  ASSERT_TRUE(mmu.Map(0x10000, 0x4000, kPteWritable).ok());
  EXPECT_EQ(*mmu.Translate(0x10000, false, Privilege::kKernel), 0x4000u);
}

TEST(MmuTest, UnmapAndProtectOfUnmappedAreNotFound) {
  Mmu mmu;
  EXPECT_EQ(mmu.Unmap(0x77000).code(), StatusCode::kNotFound);
  EXPECT_EQ(mmu.Protect(Mmu::kKernelAsid, 0x77000, kPteWritable).code(),
            StatusCode::kNotFound);
}

TEST(MmuTest, FlagsRoundTripThroughLookupAndProtect) {
  Mmu mmu;
  const uint32_t flags = kPteWritable | kPteUser;
  ASSERT_TRUE(mmu.Map(0x20000, 0x5000, flags).ok());
  PageTableEntry pte;
  ASSERT_TRUE(mmu.Lookup(Mmu::kKernelAsid, 0x20000, &pte));
  EXPECT_EQ(pte.physical_page, 0x5000u / kPageSize);
  EXPECT_EQ(pte.flags, flags | kPtePresent);
  // Protect swaps the flags, keeps the frame (the COW downgrade shape).
  ASSERT_TRUE(
      mmu.Protect(Mmu::kKernelAsid, 0x20000, kPteUser | kPteCow).ok());
  ASSERT_TRUE(mmu.Lookup(Mmu::kKernelAsid, 0x20000, &pte));
  EXPECT_EQ(pte.physical_page, 0x5000u / kPageSize);
  EXPECT_EQ(pte.flags & kPteWritable, 0u);
  EXPECT_NE(pte.flags & kPteCow, 0u);
  EXPECT_NE(pte.flags & kPtePresent, 0u);
  // A COW entry refuses writes even though it is "mapped".
  EXPECT_FALSE(mmu.Translate(0x20000, true, Privilege::kUser).ok());
  EXPECT_TRUE(mmu.Translate(0x20000, false, Privilege::kUser).ok());
}

TEST(MmuTest, AddressSpacesAreIsolated) {
  Mmu mmu;
  auto a = mmu.CreateAddressSpace();
  auto b = mmu.CreateAddressSpace();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  ASSERT_TRUE(mmu.Map(*a, 0x30000, 0x6000, kPteWritable | kPteUser).ok());
  EXPECT_TRUE(mmu.IsMapped(*a, 0x30000));
  EXPECT_FALSE(mmu.IsMapped(*b, 0x30000));
  EXPECT_FALSE(mmu.IsMapped(Mmu::kKernelAsid, 0x30000));
  // Same vaddr in the sibling space resolves to its own frame.
  ASSERT_TRUE(mmu.Map(*b, 0x30000, 0x7000, kPteWritable | kPteUser).ok());
  EXPECT_EQ(*mmu.Translate(*a, 0x30000, false, Privilege::kUser), 0x6000u);
  EXPECT_EQ(*mmu.Translate(*b, 0x30000, false, Privilege::kUser), 0x7000u);
  // Destroying a space drops its mappings and refuses further use.
  ASSERT_TRUE(mmu.DestroyAddressSpace(*a).ok());
  EXPECT_FALSE(mmu.Map(*a, 0x40000, 0x8000, kPteUser).ok());
  EXPECT_FALSE(mmu.DestroyAddressSpace(Mmu::kKernelAsid).ok());
}

TEST(MmuTest, EntriesSnapshotsOneSpace) {
  Mmu mmu;
  auto a = mmu.CreateAddressSpace();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mmu.Map(*a, 0x10000, 0x3000, kPteUser).ok());
  ASSERT_TRUE(mmu.Map(*a, 0x12000, 0x4000, kPteUser | kPteWritable).ok());
  ASSERT_TRUE(mmu.Map(0x999000, 0x5000, kPteWritable).ok());  // Kernel asid.
  auto entries = mmu.Entries(*a);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 0x10000u);
  EXPECT_EQ(entries[0].second.physical_page, 0x3000u / kPageSize);
  EXPECT_EQ(entries[1].first, 0x12000u);
}

TEST(MmuTest, FrameTypeDeclarations) {
  Mmu mmu;
  EXPECT_EQ(mmu.frame_type(0x3000), FrameType::kUnused);
  mmu.DeclareFrameType(0x3000, FrameType::kKernel);
  EXPECT_EQ(mmu.frame_type(0x3000), FrameType::kKernel);
  mmu.DeclareFrameType(0x3000, FrameType::kUnused);
  EXPECT_EQ(mmu.frame_type(0x3000), FrameType::kUnused);
  EXPECT_STREQ(FrameTypeName(FrameType::kPageTable), "page-table");
}

TEST(TlbTest, HitMissAndPermissionReplay) {
  Tlb tlb;
  PageTableEntry pte{0x3000, kPtePresent | kPteUser};
  PageTableEntry out;
  EXPECT_FALSE(tlb.Lookup(1, 0x10000, &out));
  tlb.Insert(1, 0x10000, pte);
  ASSERT_TRUE(tlb.Lookup(1, 0x10000, &out));
  EXPECT_EQ(out.physical_page, 0x3000u);
  // Same vpage, different asid: miss (entries are asid-tagged).
  EXPECT_FALSE(tlb.Lookup(2, 0x10000, &out));
  auto stats = tlb.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(TlbTest, InvalidationGranularities) {
  Tlb tlb;
  PageTableEntry pte{0x3000, kPtePresent};
  tlb.Insert(1, 0x10000, pte);
  tlb.Insert(1, 0x11000, pte);
  tlb.Insert(2, 0x10000, pte);
  PageTableEntry out;
  tlb.InvalidatePage(1, 0x10000);
  EXPECT_FALSE(tlb.Lookup(1, 0x10000, &out));
  EXPECT_TRUE(tlb.Lookup(1, 0x11000, &out));
  tlb.InvalidateAsid(1);
  EXPECT_FALSE(tlb.Lookup(1, 0x11000, &out));
  EXPECT_TRUE(tlb.Lookup(2, 0x10000, &out));
  tlb.InvalidateAll();
  EXPECT_FALSE(tlb.Lookup(2, 0x10000, &out));
  tlb.CountShootdown();
  EXPECT_EQ(tlb.stats().shootdowns_received, 1u);
  EXPECT_GT(tlb.stats().invalidations, 0u);
}

TEST(CpuTest, FpDirtyTracking) {
  Cpu cpu;
  EXPECT_FALSE(cpu.fp_dirty());
  cpu.WriteFpRegister(2, 3.5);
  EXPECT_TRUE(cpu.fp_dirty());
  EXPECT_EQ(cpu.fp().regs[2], 3.5);
  cpu.set_fp_dirty(false);
  EXPECT_FALSE(cpu.fp_dirty());
}

TEST(DeviceTest, ConsoleAndTimer) {
  Machine m;
  ASSERT_TRUE(m.IoWrite(Machine::kPortConsole, 'h').ok());
  ASSERT_TRUE(m.IoWrite(Machine::kPortConsole, 'i').ok());
  EXPECT_EQ(m.console().output(), "hi");
  ASSERT_TRUE(m.IoWrite(Machine::kPortTimer, 5).ok());
  EXPECT_EQ(*m.IoRead(Machine::kPortTimer), 5u);
  EXPECT_FALSE(m.IoRead(0x9999).ok());
}

TEST(DeviceTest, TimerFrequencyReprogramming) {
  Machine m;
  EXPECT_EQ(m.timer().frequency_hz(), TimerDevice::kDefaultFrequencyHz);
  ASSERT_TRUE(m.timer().SetFrequency(997).ok());
  EXPECT_EQ(m.timer().frequency_hz(), 997u);
  EXPECT_EQ(m.timer().period_ns(), 1000000000ull / 997);
  // A stopped clock (0 Hz) and rates past the crystal are rejected, and a
  // rejected reprogram leaves the running rate untouched.
  EXPECT_EQ(m.timer().SetFrequency(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(m.timer().SetFrequency(TimerDevice::kMaxFrequencyHz + 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(m.timer().frequency_hz(), 997u);
}

TEST(DeviceTest, TimerInterruptLineIsSeparateFromTicks) {
  Machine m;
  int fired = 0;
  m.timer().SetInterruptCallback([&fired] { ++fired; });
  const uint64_t ticks_before = m.timer().ticks();
  m.timer().FireInterrupt();
  m.timer().FireInterrupt();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(m.timer().interrupts_fired(), 2u);
  // The interrupt line never advances guest time: gettimeofday's tick
  // fiction is immune to profiler rate changes.
  EXPECT_EQ(m.timer().ticks(), ticks_before);
  m.timer().SetInterruptCallback(nullptr);
  m.timer().FireInterrupt();  // No callback installed: counted, not called.
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(m.timer().interrupts_fired(), 3u);
}

TEST(DeviceTest, BlockDeviceSectors) {
  Machine m;
  std::vector<uint8_t> sector(BlockDevice::kSectorSize, 0x5A);
  ASSERT_TRUE(m.disk().WriteSector(7, sector.data()).ok());
  std::vector<uint8_t> back(BlockDevice::kSectorSize, 0);
  ASSERT_TRUE(m.disk().ReadSector(7, back.data()).ok());
  EXPECT_EQ(back[0], 0x5A);
  EXPECT_EQ(back[511], 0x5A);
  EXPECT_FALSE(m.disk().ReadSector(m.disk().num_sectors(), back.data()).ok());
  EXPECT_EQ(m.disk().reads(), 1u);
  EXPECT_EQ(m.disk().writes(), 1u);
}

TEST(MachineTest, PhysicalPageAllocator) {
  Machine m(/*memory_bytes=*/16 * kPageSize);
  uint64_t first = m.AllocatePhysicalPage();
  EXPECT_EQ(first, kPageSize);  // Page 0 is the null guard.
  uint64_t second = m.AllocatePhysicalPage();
  EXPECT_EQ(second, 2 * kPageSize);
  // Pages come back zeroed.
  EXPECT_EQ(*m.memory().Read(second, 8), 0u);
  // Exhaustion returns 0.
  for (int i = 0; i < 32; ++i) {
    m.AllocatePhysicalPage();
  }
  EXPECT_EQ(m.AllocatePhysicalPage(), 0u);
}

}  // namespace
}  // namespace sva::hw
