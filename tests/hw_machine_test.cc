#include <gtest/gtest.h>

#include "src/hw/machine.h"

namespace sva::hw {
namespace {

TEST(PhysicalMemoryTest, ReadWriteWidths) {
  PhysicalMemory mem(1 << 16);
  ASSERT_TRUE(mem.Write(0x100, 8, 0x1122334455667788ull).ok());
  EXPECT_EQ(*mem.Read(0x100, 8), 0x1122334455667788ull);
  EXPECT_EQ(*mem.Read(0x100, 4), 0x55667788ull);
  EXPECT_EQ(*mem.Read(0x100, 2), 0x7788ull);
  EXPECT_EQ(*mem.Read(0x100, 1), 0x88ull);
  EXPECT_FALSE(mem.Read(1 << 16, 1).ok());
  EXPECT_FALSE(mem.Write((1 << 16) - 3, 8, 0).ok());
}

TEST(PhysicalMemoryTest, CopyAndFill) {
  PhysicalMemory mem(1 << 16);
  ASSERT_TRUE(mem.Fill(0x200, 0xAB, 64).ok());
  ASSERT_TRUE(mem.Copy(0x400, 0x200, 64).ok());
  EXPECT_EQ(*mem.Read(0x43F, 1), 0xABull);
  EXPECT_FALSE(mem.Copy(0x400, (1 << 16) - 8, 64).ok());
}

TEST(MmuTest, MapTranslateUnmap) {
  Mmu mmu;
  ASSERT_TRUE(mmu.Map(0x10000, 0x3000, kPteWritable).ok());
  auto pa = mmu.Translate(0x10123, /*write=*/false, Privilege::kKernel);
  ASSERT_TRUE(pa.ok());
  EXPECT_EQ(*pa, 0x3123u);
  EXPECT_TRUE(mmu.IsMapped(0x10000));
  ASSERT_TRUE(mmu.Unmap(0x10000).ok());
  EXPECT_FALSE(mmu.Translate(0x10123, false, Privilege::kKernel).ok());
  EXPECT_FALSE(mmu.Unmap(0x10000).ok());
}

TEST(MmuTest, RejectsUnalignedAndFaults) {
  Mmu mmu;
  EXPECT_FALSE(mmu.Map(0x10001, 0x3000, 0).ok());
  EXPECT_FALSE(mmu.Map(0x10000, 0x3001, 0).ok());
  EXPECT_FALSE(mmu.Translate(0x99999, false, Privilege::kKernel).ok());
  EXPECT_GT(mmu.faults(), 0u);
}

TEST(MmuTest, PrivilegeEnforcement) {
  Mmu mmu;
  ASSERT_TRUE(mmu.Map(0x10000, 0x3000, kPteWritable).ok());  // Kernel page.
  ASSERT_TRUE(
      mmu.Map(0x20000, 0x4000, kPteWritable | kPteUser).ok());  // User page.
  EXPECT_TRUE(mmu.Translate(0x10000, false, Privilege::kKernel).ok());
  EXPECT_FALSE(mmu.Translate(0x10000, false, Privilege::kUser).ok());
  EXPECT_TRUE(mmu.Translate(0x20000, true, Privilege::kUser).ok());
}

TEST(MmuTest, ReadOnlyPages) {
  Mmu mmu;
  ASSERT_TRUE(mmu.Map(0x10000, 0x3000, kPteUser).ok());
  EXPECT_TRUE(mmu.Translate(0x10000, false, Privilege::kUser).ok());
  EXPECT_FALSE(mmu.Translate(0x10000, true, Privilege::kUser).ok());
}

TEST(MmuTest, SvmReservedPagesAreProtected) {
  Mmu mmu;
  ASSERT_TRUE(
      mmu.Map(0x50000, 0x5000, kPteWritable | kPteSvmReserved).ok());
  // The kernel cannot remap or unmap SVM pages.
  EXPECT_FALSE(mmu.Map(0x50000, 0x6000, kPteWritable).ok());
  EXPECT_FALSE(mmu.Unmap(0x50000).ok());
  // Only kernel-privilege (SVM) code touches them.
  EXPECT_FALSE(mmu.Translate(0x50000, false, Privilege::kUser).ok());
}

TEST(CpuTest, FpDirtyTracking) {
  Cpu cpu;
  EXPECT_FALSE(cpu.fp_dirty());
  cpu.WriteFpRegister(2, 3.5);
  EXPECT_TRUE(cpu.fp_dirty());
  EXPECT_EQ(cpu.fp().regs[2], 3.5);
  cpu.set_fp_dirty(false);
  EXPECT_FALSE(cpu.fp_dirty());
}

TEST(DeviceTest, ConsoleAndTimer) {
  Machine m;
  ASSERT_TRUE(m.IoWrite(Machine::kPortConsole, 'h').ok());
  ASSERT_TRUE(m.IoWrite(Machine::kPortConsole, 'i').ok());
  EXPECT_EQ(m.console().output(), "hi");
  ASSERT_TRUE(m.IoWrite(Machine::kPortTimer, 5).ok());
  EXPECT_EQ(*m.IoRead(Machine::kPortTimer), 5u);
  EXPECT_FALSE(m.IoRead(0x9999).ok());
}

TEST(DeviceTest, BlockDeviceSectors) {
  Machine m;
  std::vector<uint8_t> sector(BlockDevice::kSectorSize, 0x5A);
  ASSERT_TRUE(m.disk().WriteSector(7, sector.data()).ok());
  std::vector<uint8_t> back(BlockDevice::kSectorSize, 0);
  ASSERT_TRUE(m.disk().ReadSector(7, back.data()).ok());
  EXPECT_EQ(back[0], 0x5A);
  EXPECT_EQ(back[511], 0x5A);
  EXPECT_FALSE(m.disk().ReadSector(m.disk().num_sectors(), back.data()).ok());
  EXPECT_EQ(m.disk().reads(), 1u);
  EXPECT_EQ(m.disk().writes(), 1u);
}

TEST(MachineTest, PhysicalPageAllocator) {
  Machine m(/*memory_bytes=*/16 * kPageSize);
  uint64_t first = m.AllocatePhysicalPage();
  EXPECT_EQ(first, kPageSize);  // Page 0 is the null guard.
  uint64_t second = m.AllocatePhysicalPage();
  EXPECT_EQ(second, 2 * kPageSize);
  // Pages come back zeroed.
  EXPECT_EQ(*m.memory().Read(second, 8), 0u);
  // Exhaustion returns 0.
  for (int i = 0; i < 32; ++i) {
    m.AllocatePhysicalPage();
  }
  EXPECT_EQ(m.AllocatePhysicalPage(), 0u);
}

}  // namespace
}  // namespace sva::hw
