#include <gtest/gtest.h>

#include <set>

#include "src/runtime/pool_allocator.h"

namespace sva::runtime {
namespace {

// A simple bump page provider over an abstract address range.
class TestPages : public PageProvider {
 public:
  explicit TestPages(uint64_t limit_pages = 1 << 20)
      : limit_pages_(limit_pages) {}
  uint64_t AllocatePage() override {
    if (allocated_ >= limit_pages_) {
      return 0;
    }
    ++allocated_;
    uint64_t addr = next_;
    next_ += page_size();
    return addr;
  }
  uint64_t page_size() const override { return 4096; }
  uint64_t allocated() const { return allocated_; }

 private:
  uint64_t next_ = 0x100000;
  uint64_t allocated_ = 0;
  uint64_t limit_pages_;
};

TEST(PoolAllocatorTest, AllocatesAlignedDistinctObjects) {
  TestPages pages;
  PoolAllocator pool("task_cache", 96, pages);
  EXPECT_EQ(pool.object_size(), 96u);
  EXPECT_EQ(pool.slot_stride(), 96u);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    uint64_t a = pool.Allocate();
    ASSERT_NE(a, 0u);
    // SVA alignment constraint: object starts are stride-aligned within the
    // page, so dangling pointers can never see a type-misaligned object.
    EXPECT_EQ((a - 0x100000) % 8, 0u);
    EXPECT_TRUE(seen.insert(a).second) << "duplicate allocation";
  }
  EXPECT_EQ(pool.live_objects(), 200u);
}

TEST(PoolAllocatorTest, StrideRoundsUpToMinimum) {
  TestPages pages;
  PoolAllocator pool("tiny", 5, pages);
  EXPECT_EQ(pool.slot_stride(), 8u);
  uint64_t a = pool.Allocate();
  uint64_t b = pool.Allocate();
  EXPECT_GE(b > a ? b - a : a - b, 8u);
}

TEST(PoolAllocatorTest, ReusesFreedMemoryInternally) {
  TestPages pages;
  PoolAllocator pool("obj", 64, pages);
  uint64_t a = pool.Allocate();
  ASSERT_TRUE(pool.Free(a).ok());
  uint64_t pages_before = pool.pages_owned();
  // The freed slot is reused before any new page is taken (internal reuse
  // is allowed; releasing to other pools is not).
  uint64_t b = pool.Allocate();
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.pages_owned(), pages_before);
}

TEST(PoolAllocatorTest, DetectsBadFree) {
  TestPages pages;
  PoolAllocator pool("obj", 64, pages);
  uint64_t a = pool.Allocate();
  EXPECT_FALSE(pool.Free(a + 8).ok());   // Interior pointer.
  EXPECT_TRUE(pool.Free(a).ok());
  EXPECT_FALSE(pool.Free(a).ok());       // Double free.
}

TEST(PoolAllocatorTest, NeverReleasesPages) {
  TestPages pages;
  PoolAllocator pool("obj", 128, pages);
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 1000; ++i) {
    addrs.push_back(pool.Allocate());
  }
  uint64_t owned = pool.pages_owned();
  for (uint64_t a : addrs) {
    ASSERT_TRUE(pool.Free(a).ok());
  }
  // SLAB_NO_REAP: freeing everything does not shrink the pool.
  EXPECT_EQ(pool.pages_owned(), owned);
  EXPECT_EQ(pool.live_objects(), 0u);
}

TEST(PoolAllocatorTest, ExhaustionReturnsZero) {
  TestPages pages(/*limit_pages=*/1);
  PoolAllocator pool("obj", 1024, pages);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(pool.Allocate(), 0u);
  }
  EXPECT_EQ(pool.Allocate(), 0u);
}

// A provider with a hard page budget that can be raised mid-test, and an
// optional scripted discontinuity, for exercising the multi-page Grow path.
class FlakyPages : public PageProvider {
 public:
  explicit FlakyPages(uint64_t budget) : budget_(budget) {}
  uint64_t AllocatePage() override {
    if (allocated_ >= budget_) {
      return 0;
    }
    ++allocated_;
    uint64_t addr = next_;
    next_ += page_size();
    if (allocated_ == skip_after_) {
      // The next page will not be contiguous with this one.
      next_ += page_size();
    }
    return addr;
  }
  uint64_t page_size() const override { return 4096; }
  void set_budget(uint64_t budget) { budget_ = budget; }
  void set_skip_after(uint64_t n) { skip_after_ = n; }
  uint64_t allocated() const { return allocated_; }

 private:
  uint64_t next_ = 0x100000;
  uint64_t allocated_ = 0;
  uint64_t budget_;
  uint64_t skip_after_ = 0;
};

TEST(PoolAllocatorTest, MultiPageObjectSpansContiguousPages) {
  TestPages pages;
  // 3 pages per object.
  PoolAllocator pool("big", 3 * 4096, pages);
  uint64_t a = pool.Allocate();
  uint64_t b = pool.Allocate();
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(b > a ? b - a : a - b, 3 * 4096u);
  EXPECT_EQ(pool.pages_owned(), 6u);
  EXPECT_EQ(pool.stranded_pages(), 0u);
}

TEST(PoolAllocatorTest, MultiPageGrowthFailureDoesNotLeakPages) {
  // Budget allows only 2 of the 3 pages the object needs.
  FlakyPages pages(/*budget=*/2);
  PoolAllocator pool("big", 3 * 4096, pages);
  EXPECT_EQ(pool.Allocate(), 0u);
  EXPECT_EQ(pool.pages_owned(), 2u);
  // The partial run is retained, not leaked: once the provider recovers,
  // the next Grow completes the same run and the object becomes usable.
  EXPECT_EQ(pool.pending_run_pages(), 2u);
  pages.set_budget(3);
  uint64_t a = pool.Allocate();
  EXPECT_NE(a, 0u);
  EXPECT_EQ(pool.pages_owned(), 3u);
  EXPECT_EQ(pool.pending_run_pages(), 0u);
  EXPECT_EQ(pool.stranded_pages(), 0u);
  // All three pages were consumed exactly once.
  EXPECT_EQ(pages.allocated(), 3u);
}

TEST(PoolAllocatorTest, MultiPageGrowthSurvivesDiscontinuity) {
  FlakyPages pages(/*budget=*/100);
  pages.set_skip_after(2);  // Break the run after the second page.
  PoolAllocator pool("big", 3 * 4096, pages);
  uint64_t a = pool.Allocate();
  ASSERT_NE(a, 0u);
  // The 2-page prefix could not back an object and was stranded; the
  // object sits on the post-gap contiguous run.
  EXPECT_EQ(pool.stranded_pages(), 2u);
  EXPECT_EQ(pool.pages_owned(), 5u);
  // The object's pages are contiguous and past the gap.
  EXPECT_EQ(a, 0x100000u + 3 * 4096u);
}

TEST(PoolAllocatorTest, LiveObjectTrackingAndEnumeration) {
  TestPages pages;
  PoolAllocator pool("obj", 32, pages);
  uint64_t a = pool.Allocate();
  uint64_t b = pool.Allocate();
  EXPECT_TRUE(pool.IsLiveObject(a));
  EXPECT_FALSE(pool.IsLiveObject(a + 4));
  auto live = pool.LiveObjects();
  EXPECT_EQ(live.size(), 2u);
  ASSERT_TRUE(pool.Free(b).ok());
  EXPECT_EQ(pool.LiveObjects().size(), 1u);
}

TEST(OrdinaryAllocatorTest, SizeClassRouting) {
  TestPages pages;
  OrdinaryAllocator kmalloc(pages);
  EXPECT_EQ(kmalloc.CacheFor(1)->object_size(), 32u);
  EXPECT_EQ(kmalloc.CacheFor(32)->object_size(), 32u);
  EXPECT_EQ(kmalloc.CacheFor(33)->object_size(), 64u);
  EXPECT_EQ(kmalloc.CacheFor(100)->object_size(), 128u);
  EXPECT_EQ(kmalloc.CacheFor(1 << 20), nullptr);
}

TEST(OrdinaryAllocatorTest, AllocationSizeQuery) {
  TestPages pages;
  OrdinaryAllocator kmalloc(pages);
  uint64_t a = kmalloc.Allocate(100);
  ASSERT_NE(a, 0u);
  // The Section 4.4 size query: usable size is the class size.
  EXPECT_EQ(kmalloc.AllocationSize(a), 128u);
  EXPECT_EQ(kmalloc.AllocationSize(a + 1), 0u);
  ASSERT_TRUE(kmalloc.Free(a).ok());
  EXPECT_EQ(kmalloc.AllocationSize(a), 0u);
  EXPECT_FALSE(kmalloc.Free(a).ok());
}

TEST(OrdinaryAllocatorTest, ExposesKmallocCacheRelationship) {
  TestPages pages;
  OrdinaryAllocator kmalloc(pages);
  // Section 6.2: kmalloc is a collection of caches; the safety compiler
  // merges per cache rather than globally.
  EXPECT_GE(kmalloc.caches().size(), 10u);
  uint64_t a = kmalloc.Allocate(60);
  EXPECT_TRUE(kmalloc.CacheFor(60)->IsLiveObject(a));
}

// Parameterized sweep over object sizes: allocation/free cycles preserve
// the pool invariants for every size.
class PoolSizeSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolSizeSweepTest, ChurnPreservesInvariants) {
  TestPages pages;
  PoolAllocator pool("sweep", GetParam(), pages);
  std::vector<uint64_t> live;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      uint64_t a = pool.Allocate();
      ASSERT_NE(a, 0u);
      live.push_back(a);
    }
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pool.Free(live.back()).ok());
      live.pop_back();
    }
  }
  EXPECT_EQ(pool.live_objects(), live.size());
  // All live objects are distinct and stride-separated.
  std::set<uint64_t> unique(live.begin(), live.end());
  EXPECT_EQ(unique.size(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolSizeSweepTest,
                         ::testing::Values(1u, 8u, 12u, 32u, 96u, 100u, 512u,
                                           4096u));

}  // namespace
}  // namespace sva::runtime
