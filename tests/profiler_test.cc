// The sampling-profiler suite: seqlock slot attribution, folded-stack
// export, the read cursor, session refcounting, and two whole-system
// properties — a TSan-visible concurrent sample/drain/fork workload and a
// determinism check that two profiled runs of the same guest attribute the
// same function set.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/safety/compiler.h"
#include "src/smp/percpu.h"
#include "src/svm/svm.h"
#include "src/trace/profiler.h"
#include "src/verifier/typechecker.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva {
namespace {

using trace::ProfContext;
using trace::Profiler;

uint64_t GuestSamples(const std::vector<uint64_t>& counts) {
  return counts[static_cast<size_t>(ProfContext::kGuestInterp)] +
         counts[static_cast<size_t>(ProfContext::kGuestThreaded)];
}

TEST(ProfilerTest, ContextAttributionInFoldedOutput) {
  Profiler& p = Profiler::Get();
  p.ResetForTest();
  Profiler::Options opts;
  opts.hz = 1000;
  opts.num_cpus = 1;
  ASSERT_TRUE(p.Start(opts));
  const uint32_t name = trace::InternProfName("syscall:test");
  p.PushContext(ProfContext::kKernelSyscall, name, /*pid=*/7, /*mode=*/3);
  p.SampleNow();
  p.PopContext();
  p.Stop();
  const auto counts = p.ContextCounts();
  EXPECT_GE(counts[static_cast<size_t>(ProfContext::kKernelSyscall)], 1u);
  EXPECT_NE(p.FoldedText().find("syscall:test"), std::string::npos);
  EXPECT_GE(p.stats().samples, 1u);
}

TEST(ProfilerTest, IdleSamplesGetSyntheticRoot) {
  Profiler& p = Profiler::Get();
  p.ResetForTest();
  Profiler::Options opts;
  opts.hz = 1000;
  ASSERT_TRUE(p.Start(opts));
  p.SampleNow();  // Nothing pushed: the CPU is idle.
  p.Stop();
  const auto counts = p.ContextCounts();
  EXPECT_GE(counts[static_cast<size_t>(ProfContext::kIdle)], 1u);
  // The synthetic one-frame stack keeps the folded output at 100% of
  // samples (prof-report counts "idle" roots as attributed).
  EXPECT_NE(p.FoldedText().find("idle "), std::string::npos);
}

TEST(ProfilerTest, NestedGuestFramesFoldInCallOrder) {
  Profiler& p = Profiler::Get();
  p.ResetForTest();
  Profiler::Options opts;
  opts.hz = 1000;
  ASSERT_TRUE(p.Start(opts));
  const uint32_t outer = trace::InternProfName("guest:outer");
  const uint32_t inner = trace::InternProfName("guest:inner");
  p.PushGuestFrame(outer, /*threaded=*/true, /*safe_mode=*/true);
  p.PushGuestFrame(inner, /*threaded=*/true, /*safe_mode=*/true);
  p.SampleNow();
  p.PopGuestFrame();
  p.PopGuestFrame();
  p.Stop();
  EXPECT_NE(p.FoldedText().find("guest:outer;guest:inner"),
            std::string::npos);
  const auto counts = p.ContextCounts();
  EXPECT_GE(counts[static_cast<size_t>(ProfContext::kGuestThreaded)], 1u);
}

TEST(ProfilerTest, DeepGuestStacksCountTruncation) {
  Profiler& p = Profiler::Get();
  p.ResetForTest();
  Profiler::Options opts;
  opts.hz = 1000;
  ASSERT_TRUE(p.Start(opts));
  const uint32_t name = trace::InternProfName("guest:deep");
  constexpr int kDepth = 40;  // 8 past the 32-frame slot.
  for (int i = 0; i < kDepth; ++i) {
    p.PushGuestFrame(name, /*threaded=*/false, /*safe_mode=*/true);
  }
  p.SampleNow();
  for (int i = 0; i < kDepth; ++i) {
    p.PopGuestFrame();
  }
  p.Stop();
  EXPECT_GE(p.stats().stacks_truncated, 8u);
  const auto counts = p.ContextCounts();
  EXPECT_GE(counts[static_cast<size_t>(ProfContext::kGuestInterp)], 1u);
}

TEST(ProfilerTest, ReadSamplesCursorSeesOnlyNewSamples) {
  Profiler& p = Profiler::Get();
  p.ResetForTest();
  Profiler::Options opts;
  opts.hz = 1000;
  ASSERT_TRUE(p.Start(opts));
  uint64_t cursor = p.EndCursor();
  const uint32_t name = trace::InternProfName("syscall:cursor");
  p.PushContext(ProfContext::kKernelSyscall, name, /*pid=*/7, /*mode=*/3);
  p.SampleNow();
  p.PopContext();
  std::vector<trace::ProfSample> out;
  ASSERT_GE(p.ReadSamples(&cursor, &out, 256), 1u);
  bool found = false;
  for (const trace::ProfSample& s : out) {
    if (s.context == ProfContext::kKernelSyscall && s.pid == 7) {
      found = true;
      EXPECT_EQ(p.StackString(s.stack_id), "syscall:cursor");
    }
  }
  EXPECT_TRUE(found);
  p.Stop();
  // Drain to the end: after the final Stop() flush the cursor must land
  // exactly on EndCursor(), with no stranded or duplicated samples.
  while (p.ReadSamples(&cursor, &out, 256) > 0) {
  }
  EXPECT_EQ(cursor, p.EndCursor());
}

TEST(ProfilerTest, StartValidatesRateAndRefcounts) {
  Profiler& p = Profiler::Get();
  p.ResetForTest();
  Profiler::Options bad;
  bad.hz = 0;
  EXPECT_FALSE(p.Start(bad));
  bad.hz = 200000;  // Past the 100 kHz ceiling.
  EXPECT_FALSE(p.Start(bad));
  EXPECT_FALSE(p.running());

  Profiler::Options good;
  good.hz = 1000;
  ASSERT_TRUE(p.Start(good));
  // A second Start joins the live session; its (invalid) options are
  // ignored because the first caller's rate won.
  Profiler::Options ignored;
  ignored.hz = 0;
  EXPECT_TRUE(p.Start(ignored));
  p.Stop();
  EXPECT_TRUE(p.running());  // One reference still holds the session.
  p.Stop();
  EXPECT_FALSE(p.running());
}

// --- Whole-system concurrency ---------------------------------------------

class ProfKernelHarness {
 public:
  explicit ProfKernelHarness(kernel::KernelMode mode)
      : machine_(512ull << 20) {
    kernel::KernelConfig config;
    config.mode = mode;
    kernel_ = std::make_unique<kernel::Kernel>(machine_, config);
    Status s = kernel_->Boot();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  kernel::Kernel& k() { return *kernel_; }

  uint64_t user(uint64_t offset = 0) {
    return kernel::kUserVirtualBase +
           static_cast<uint64_t>(kernel_->current_pid()) * 0x100000 + offset;
  }

  uint64_t Call(kernel::Sys n, uint64_t a0 = 0, uint64_t a1 = 0,
                uint64_t a2 = 0) {
    auto r = kernel_->Syscall(n, a0, a1, a2);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ~uint64_t{0};
  }

  hw::Machine machine_;
  std::unique_ptr<kernel::Kernel> kernel_;
};

// Four vCPUs make syscalls (one of them forking) while the timer-driven
// sampler fires and a fifth host thread drains the sample store — the
// full producer/sampler/consumer triangle under TSan. The workload then
// execs and exits the children with the session still live. Passes when
// nothing deadlocks, no race is reported, and samples actually landed.
//
// Same discipline as kernel_stress_test's ConcurrentVfsAndForkOffTheBkl:
// the concurrent phase never writes user memory (SysFork's eager page copy
// must only race with readers), and every worker owns its own vCPU.
TEST(ProfilerConcurrencyTest, ConcurrentSampleDrainForkExec) {
  using kernel::Sys;
  Profiler::Get().ResetForTest();
  ProfKernelHarness h(kernel::KernelMode::kSvaSafe);
  constexpr int kWorkers = 3;
  constexpr int kRounds = 200;
  constexpr int kForks = 8;
  h.k().svaos().ConfigureCpus(kWorkers + 1);

  const uint64_t prof_fd = h.Call(Sys::kProfStart, 0);
  ASSERT_LT(prof_fd, 1024u);

  std::atomic<bool> drain_run{true};
  std::atomic<uint64_t> drained{0};
  std::thread drainer([&drain_run, &drained] {
    uint64_t cursor = 0;
    std::vector<trace::ProfSample> out;
    while (drain_run.load(std::memory_order_relaxed)) {
      out.clear();
      drained.fetch_add(
          Profiler::Get().ReadSamples(&cursor, &out, 256),
          std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<uint64_t> children;  // Written only by the fork thread.
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&h, t] {
      smp::ScopedCpu bind(static_cast<unsigned>(t));
      for (int round = 0; round < kRounds; ++round) {
        h.Call(Sys::kGetPid);
        h.Call(Sys::kBrk, 0);
        h.Call(Sys::kGetPid);
      }
    });
  }
  workers.emplace_back([&h, &children] {
    smp::ScopedCpu bind(kWorkers);
    for (int i = 0; i < kForks; ++i) {
      children.push_back(h.Call(Sys::kFork));
      h.Call(Sys::kSigaction, 9, 77);
      for (int j = 0; j < 25; ++j) {
        h.Call(Sys::kGetPid);
      }
    }
  });
  for (std::thread& w : workers) {
    w.join();
  }

  // Sequential teardown with the session still sampling: each child execs
  // and exits, then the parent reaps it.
  for (uint64_t child : children) {
    while (h.k().current_pid() != static_cast<int>(child)) {
      ASSERT_TRUE(h.k().Yield().ok());
    }
    ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/dev/null").ok());
    h.Call(Sys::kExecve, h.user(0));
    h.Call(Sys::kExit, 0);
    ASSERT_EQ(h.Call(Sys::kWaitPid, child), child);
  }

  drain_run.store(false, std::memory_order_relaxed);
  drainer.join();
  EXPECT_EQ(h.Call(Sys::kProfStop, prof_fd), 0u);
  EXPECT_GT(Profiler::Get().stats().samples, 0u);
  EXPECT_FALSE(Profiler::Get().running());
}

// --- Determinism ----------------------------------------------------------

// Two guest functions: hot_outer calls hot_inner twice, and hot_inner's
// loop is essentially all of the work — so any statistically meaningful
// profile must attribute samples to both (inner on top of outer).
constexpr char kHotBytecode[] = R"(
module "prof_hot"

define i64 @hot_inner(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %loop ]
  %step = add i64 %i, 7
  %acc2 = add i64 %acc, %step
  %i2 = add i64 %i, 1
  %done = icmp uge i64 %i2, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc2
}

define i64 @hot_outer(i64 %n) {
entry:
  %a = call i64 @hot_inner(i64 %n)
  %b = call i64 @hot_inner(i64 %n)
  %sum = add i64 %a, %b
  ret i64 %sum
}
)";

std::unique_ptr<svm::LoadedModule> LoadHotModule() {
  auto parsed = vir::ParseModule(kHotBytecode);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return nullptr;
  auto module = std::move(*parsed);
  auto compiled = safety::RunSafetyCompiler(*module);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled.ok()) return nullptr;
  Status verified = vir::VerifyModule(*module);
  EXPECT_TRUE(verified.ok()) << verified.ToString();
  if (!verified.ok()) return nullptr;
  Status typed = verifier::TypeCheckOrError(*module);
  EXPECT_TRUE(typed.ok()) << typed.ToString();
  if (!typed.ok()) return nullptr;
  svm::SvmOptions options;
  options.interp.tier = svm::ExecTier::kThreaded;
  svm::SecureVirtualMachine vm(options);
  auto loaded = vm.LoadModule(std::move(module));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  if (!loaded.ok()) return nullptr;
  return std::move(*loaded);
}

// One profiled replica: a worker thread runs hot_outer in a loop while
// this thread samples until >= kWantSamples landed in guest context.
// Returns the set of guest function names the folded profile attributes.
std::set<std::string> ProfiledGuestFunctions() {
  constexpr uint64_t kWantSamples = 50;
  Profiler& p = Profiler::Get();
  p.ResetForTest();
  std::unique_ptr<svm::LoadedModule> module = LoadHotModule();
  std::set<std::string> fns;
  if (module == nullptr) return fns;

  Profiler::Options opts;
  opts.hz = 1000;
  opts.num_cpus = 1;
  EXPECT_TRUE(p.Start(opts));
  std::atomic<bool> stop{false};
  std::atomic<bool> guest_ok{true};
  std::thread guest([&module, &stop, &guest_ok] {
    smp::ScopedCpu bind(0);
    while (!stop.load(std::memory_order_relaxed)) {
      svm::ExecResult r = module->Run("hot_outer", {512});
      if (!r.status.ok()) {
        guest_ok.store(false, std::memory_order_relaxed);
        return;
      }
    }
  });
  for (int i = 0; i < 20000 && GuestSamples(p.ContextCounts()) < kWantSamples;
       ++i) {
    p.SampleNow();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  stop.store(true, std::memory_order_relaxed);
  guest.join();
  p.Stop();
  EXPECT_TRUE(guest_ok.load(std::memory_order_relaxed));
  EXPECT_GE(GuestSamples(p.ContextCounts()), kWantSamples);

  // Collect every "guest:" frame the folded profile mentions.
  std::istringstream folded(p.FoldedText());
  std::string line;
  while (std::getline(folded, line)) {
    size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string stack = line.substr(0, space);
    size_t pos = 0;
    while (pos <= stack.size()) {
      size_t semi = stack.find(';', pos);
      std::string frame = stack.substr(
          pos, semi == std::string::npos ? std::string::npos : semi - pos);
      if (frame.rfind("guest:", 0) == 0) {
        fns.insert(frame);
      }
      if (semi == std::string::npos) break;
      pos = semi + 1;
    }
  }
  return fns;
}

// Two profiled runs of the same workload must attribute the same function
// set — sampling is statistical in counts but not in coverage once the
// sample budget dwarfs the program's function count.
TEST(ProfilerDeterminismTest, TwoRunsAttributeTheSameFunctionSet) {
  std::set<std::string> first = ProfiledGuestFunctions();
  std::set<std::string> second = ProfiledGuestFunctions();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.count("guest:hot_inner"), 1u);
  EXPECT_EQ(first.count("guest:hot_outer"), 1u);
  Profiler::Get().ResetForTest();
}

}  // namespace
}  // namespace sva
