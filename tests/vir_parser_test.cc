#include <gtest/gtest.h>

#include "src/vir/parser.h"
#include "src/vir/printer.h"
#include "src/vir/structural_verifier.h"

namespace sva::vir {
namespace {

constexpr const char* kSumModule = R"(
module "sum"

define i32 @sum(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %loop ]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %done = icmp sge i32 %i2, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i32 %acc2
}
)";

TEST(ParserTest, ParsesLoopWithForwardReferences) {
  auto m = ParseModule(kSumModule);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  Function* fn = (*m)->GetFunction("sum");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->blocks().size(), 3u);
  EXPECT_TRUE(VerifyModule(**m).ok());
}

TEST(ParserTest, RoundTripsThroughPrinter) {
  auto m1 = ParseModule(kSumModule);
  ASSERT_TRUE(m1.ok());
  std::string text1 = PrintModule(**m1);
  auto m2 = ParseModule(text1);
  ASSERT_TRUE(m2.ok()) << m2.status().ToString() << "\n" << text1;
  std::string text2 = PrintModule(**m2);
  EXPECT_EQ(text1, text2);
}

TEST(ParserTest, ParsesTypesGlobalsAndMetapools) {
  constexpr const char* kText = R"(
module "kernelish"

%fib_info = type { i32, i32*, [4 x i8] }
%list = type { %list*, i64 }

metapool MP1 th %fib_info complete
metapool MP2

global @fib_props : [12 x i32] !MP1
extern global @bios_area : [256 x i8]

declare i8* @kmalloc(i64)

define void @touch(%fib_info* %fi !MP1) {
entry:
  %field = getelementptr %fib_info* %fi, i64 0, i32 0
  store i32 7, i32* %field
  ret void
}
)";
  auto m = ParseModule(kText);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  Module& mod = **m;
  const MetapoolDecl* mp1 = mod.FindMetapool("MP1");
  ASSERT_NE(mp1, nullptr);
  EXPECT_TRUE(mp1->type_homogeneous);
  EXPECT_TRUE(mp1->complete);
  EXPECT_EQ(mp1->element_type, mod.types().FindNamedStruct("fib_info"));
  const MetapoolDecl* mp2 = mod.FindMetapool("MP2");
  ASSERT_NE(mp2, nullptr);
  EXPECT_FALSE(mp2->type_homogeneous);

  GlobalVariable* props = mod.GetGlobal("fib_props");
  ASSERT_NE(props, nullptr);
  EXPECT_EQ(mod.MetapoolOf(props), "MP1");
  EXPECT_TRUE(mod.GetGlobal("bios_area")->is_external());

  Function* kmalloc = mod.GetFunction("kmalloc");
  ASSERT_NE(kmalloc, nullptr);
  EXPECT_TRUE(kmalloc->is_declaration());

  Function* touch = mod.GetFunction("touch");
  ASSERT_NE(touch, nullptr);
  EXPECT_EQ(mod.MetapoolOf(touch->arg(0)), "MP1");
  EXPECT_TRUE(VerifyModule(mod).ok());

  // Recursive struct parsed correctly.
  StructType* list = mod.types().FindNamedStruct("list");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->fields()[0], mod.types().PointerTo(list));
}

TEST(ParserTest, ParsesCallsIntrinsicsAndSwitch) {
  constexpr const char* kText = R"(
module "calls"

metapool MP1

declare i32 @helper(i32)

define i32 @dispatch(i32 %which, i32 (i32)* %fp) {
entry:
  switch i32 %which, label %default, [ 0, label %a ], [ 1, label %b ]
a:
  %ra = call i32 @helper(i32 1)
  ret i32 %ra
b:
  %rb = call i32 %fp(i32 2) !sig
  ret i32 %rb
default:
  %p = malloc i8, i64 16
  call void @pchk.reg.obj(%sva.metapool* @MP1, i8* %p, i64 16)
  free i8* %p
  unreachable
}
)";
  auto m = ParseModule(kText);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_TRUE(VerifyModule(**m).ok());
  Function* dispatch = (*m)->GetFunction("dispatch");
  // The indirect call carries a signature assertion.
  bool found_assert = false;
  for (Instruction* inst : dispatch->AllInstructions()) {
    if (inst->opcode() == Opcode::kCall &&
        (*m)->HasSignatureAssertion(inst)) {
      found_assert = true;
    }
  }
  EXPECT_TRUE(found_assert);
  // Intrinsic got implicitly declared.
  EXPECT_NE((*m)->GetFunction("pchk.reg.obj"), nullptr);
}

TEST(ParserTest, ParsesScalarOpsSelectCastsAtomics) {
  constexpr const char* kText = R"(
module "ops"

define i64 @mix(i64 %a, i64 %b, i64* %p) {
entry:
  %c = sub i64 %a, %b
  %d = mul i64 %c, 3
  %e = udiv i64 %d, 2
  %f = and i64 %e, 255
  %g = shl i64 %f, 4
  %h = ashr i64 %g, 1
  %cmp = icmp ult i64 %h, %a
  %sel = select i1 %cmp, i64 %h, i64 %a
  %tr = trunc i64 %sel to i32
  %zx = zext i32 %tr to i64
  %old = atomiclis i64* %p, 1
  %swapped = cmpxchg i64* %p, %old, %zx
  writebarrier
  %neg = sub i64 0, -5
  %sum = add i64 %swapped, %neg
  ret i64 %sum
}
)";
  auto m = ParseModule(kText);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_TRUE(VerifyModule(**m).ok()) << VerifyModule(**m).ToString();
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto r = ParseModule("module \"x\"\n\ndefine i32 @f() {\nentry:\n  %a = bogus i32 1\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 5"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, RejectsUnknownValues) {
  auto r = ParseModule(
      "module \"x\"\ndefine i32 @f() {\nentry:\n  ret i32 %missing\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, RejectsLoadTypeMismatch) {
  auto r = ParseModule(
      "module \"x\"\ndefine i32 @f(i64* %p) {\nentry:\n  %v = load i32, i64* "
      "%p\n  ret i32 %v\n}\n");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ParsesFunctionPointerTypes) {
  constexpr const char* kText = R"(
module "fp"

global @handler_table : [4 x i64 (i64, i64)*]

define i64 @invoke(i64 %n, i64 %arg) {
entry:
  %slot = getelementptr [4 x i64 (i64, i64)*]* @handler_table, i64 0, i64 %n
  %fp = load i64 (i64, i64)*, i64 (i64, i64)** %slot
  %r = call i64 %fp(i64 %arg, i64 0)
  ret i64 %r
}
)";
  auto m = ParseModule(kText);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_TRUE(VerifyModule(**m).ok()) << VerifyModule(**m).ToString();
}

}  // namespace
}  // namespace sva::vir
