// Tests for the tracing & metrics subsystem: ring wrap/overwrite semantics,
// histogram bucket edges, the disabled-tracepoint no-op guarantee, the
// multi-producer seqlock protocol under real threads (tsan preset), and the
// /metrics endpoint served end-to-end over the loopback stream path.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/metrics_server.h"
#include "src/net/client.h"
#include "src/smp/percpu.h"
#include "src/trace/drainer.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace sva::trace {
namespace {

// The tracer and metrics registry are process-wide; every test starts and
// ends quiescent so suites can run in any order.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Reset();
    Metrics::Get().Reset();
  }
  void TearDown() override {
    Tracer::Get().Reset();
    Metrics::Get().Reset();
  }
};

Event MakeEvent(uint64_t ts, uint64_t a0 = 0) {
  Event e;
  e.ts_ns = ts;
  e.id = EventId::kBoundsCheck;
  e.phase = Phase::kInstant;
  e.a0 = a0;
  return e;
}

// --- EventRing: wrap, overwrite, lost accounting -----------------------------

TEST_F(TraceTest, RingDrainsExactlyWhatWasRecorded) {
  EventRing ring;
  ring.Reset(8);
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Record(MakeEvent(100 + i, i));
  }
  std::vector<Event> out;
  EXPECT_EQ(ring.Drain(&out), 0u);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].ts_ns, 100 + i);
    EXPECT_EQ(out[i].a0, i);
    EXPECT_EQ(out[i].id, EventId::kBoundsCheck);
  }
  EXPECT_EQ(ring.recorded(), 5u);
}

TEST_F(TraceTest, RingWrapOverwritesOldestAndCountsLost) {
  EventRing ring;
  ring.Reset(8);
  // 20 records into 8 slots: the first 12 are overwritten (flight-recorder
  // semantics — producers never block), and the drain reports them lost.
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Record(MakeEvent(i));
  }
  std::vector<Event> out;
  EXPECT_EQ(ring.Drain(&out), 12u);
  ASSERT_EQ(out.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].ts_ns, 12 + i);  // Oldest surviving first.
  }
  EXPECT_EQ(ring.recorded(), 20u);
  // A second drain starts from the new cursor: nothing new, nothing lost.
  out.clear();
  EXPECT_EQ(ring.Drain(&out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST_F(TraceTest, RingDrainIsIncrementalAcrossWraps) {
  EventRing ring;
  ring.Reset(4);
  for (uint64_t i = 0; i < 3; ++i) {
    ring.Record(MakeEvent(i));
  }
  std::vector<Event> out;
  EXPECT_EQ(ring.Drain(&out), 0u);
  EXPECT_EQ(out.size(), 3u);
  // Wrap twice past the drained cursor: 9 more records into 4 slots.
  for (uint64_t i = 3; i < 12; ++i) {
    ring.Record(MakeEvent(i));
  }
  out.clear();
  EXPECT_EQ(ring.Drain(&out), 5u);  // Positions 3..7 overwritten.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().ts_ns, 8u);
  EXPECT_EQ(out.back().ts_ns, 11u);
}

TEST_F(TraceTest, TracerAccumulatesLostAcrossDrains) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(kModeRing, /*ring_capacity=*/16);
  for (uint64_t i = 0; i < 40; ++i) {
    Emit(EventId::kCacheHit, i);
  }
  std::vector<Event> events = tracer.Drain();
  EXPECT_EQ(events.size(), 16u);
  EXPECT_EQ(tracer.events_lost(), 24u);
  EXPECT_EQ(tracer.events_recorded(), 40u);
  tracer.Disable();
}

// --- Histogram bucket edges --------------------------------------------------

TEST_F(TraceTest, HistogramBucketEdges) {
  Histogram h;
  h.Observe(0);  // bit_width(0) == 0: bucket 0 is exactly zero.
  h.Observe(1);  // Bucket 1: [1, 1].
  h.Observe(2);  // Bucket 2: [2, 3].
  h.Observe(3);
  h.Observe(4);                     // Bucket 3: [4, 7].
  h.Observe(~uint64_t{0});          // Bucket 64: the top of the range.
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0 + 1 + 2 + 3 + 4 + ~uint64_t{0});
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.buckets[64], 1u);
}

TEST_F(TraceTest, HistogramPowerOfTwoStraddlesBucketEdge) {
  Histogram h;
  h.Observe(1023);  // bit_width 10: bucket 10 covers [512, 1023].
  h.Observe(1024);  // bit_width 11: first value of bucket 11.
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.buckets[10], 1u);
  EXPECT_EQ(snap.buckets[11], 1u);
}

TEST_F(TraceTest, PrometheusRenderingIsCumulativeWithInfBucket) {
  Histogram h;
  h.Observe(0);
  h.Observe(5);             // Bucket 3, le = 7.
  h.Observe(6);             // Bucket 3.
  h.Observe(~uint64_t{0});  // Bucket 64: representable only as +Inf.
  HistogramSnapshot snap = h.Snapshot();
  snap.name = "test_ns";
  std::string text = RenderPrometheus({}, {snap});
  EXPECT_NE(text.find("# TYPE test_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("test_ns_bucket{le=\"0\"} 1\n"), std::string::npos);
  // Cumulative: the le="7" bucket includes the zero observation.
  EXPECT_NE(text.find("test_ns_bucket{le=\"7\"} 3\n"), std::string::npos);
  // The max-value observation appears only in +Inf (no finite edge).
  EXPECT_NE(text.find("test_ns_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("test_ns_count 4\n"), std::string::npos);
  // Empty buckets are not rendered.
  EXPECT_EQ(text.find("le=\"1\"}"), std::string::npos);
}

TEST_F(TraceTest, PrometheusRenderingGroupsCounterTypes) {
  std::vector<CounterSample> counters = {
      {"sva_x_total", "", 7},
      {"sva_pool_objects", "{pool=\"a\"}", 1},
      {"sva_pool_objects", "{pool=\"b\"}", 2},
  };
  std::string text = RenderPrometheus(counters, {});
  EXPECT_NE(text.find("# TYPE sva_x_total counter\nsva_x_total 7\n"),
            std::string::npos);
  // One TYPE line covers both labelled samples of the same metric.
  size_t type_pos = text.find("# TYPE sva_pool_objects counter");
  ASSERT_NE(type_pos, std::string::npos);
  EXPECT_EQ(text.find("# TYPE sva_pool_objects counter", type_pos + 1),
            std::string::npos);
  EXPECT_NE(text.find("sva_pool_objects{pool=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("sva_pool_objects{pool=\"b\"} 2\n"), std::string::npos);
}

// --- Disabled tracepoints are no-ops -----------------------------------------

TEST_F(TraceTest, DisabledTracepointsRecordNothing) {
  ASSERT_EQ(mode(), kModeOff);
  Emit(EventId::kBoundsCheck, 1, 2);
  {
    Span span(EventId::kSyscall, HistId::kSyscallNs, 3);
  }
  smp::SpinLock lock;
  {
    TimedLockGuard guard(lock, HistId::kBklWaitNs, kLockBkl);
  }
  EXPECT_EQ(Tracer::Get().events_recorded(), 0u);
  EXPECT_TRUE(Tracer::Get().Drain().empty());
  for (const HistogramSnapshot& snap : Metrics::Get().Snapshot()) {
    EXPECT_EQ(snap.count, 0u) << snap.name;
  }
}

TEST_F(TraceTest, MetricsOnlyModeFeedsHistogramsNotRings) {
  Tracer::Get().Enable(kModeMetrics);
  Emit(EventId::kBoundsCheck, 1);  // Instants need the ring: dropped.
  {
    Span span(EventId::kSyscall, HistId::kSyscallNs);
  }
  EXPECT_EQ(Tracer::Get().events_recorded(), 0u);
  EXPECT_EQ(Metrics::Get().hist(HistId::kSyscallNs).Snapshot().count, 1u);
  Tracer::Get().Disable();
}

TEST_F(TraceTest, SpanFeedsRingAndHistogramInFullMode) {
  Tracer::Get().Enable(kModeFull);
  {
    Span span(EventId::kSyscall, HistId::kSyscallNs, /*a0=*/42);
  }
  Tracer::Get().Disable();
  std::vector<Event> events = Tracer::Get().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, EventId::kSyscall);
  EXPECT_EQ(events[0].phase, Phase::kSpan);
  EXPECT_EQ(events[0].a0, 42u);
  EXPECT_EQ(Metrics::Get().hist(HistId::kSyscallNs).Snapshot().count, 1u);
}

// --- Multi-producer stress (tsan) --------------------------------------------

TEST_F(TraceTest, ConcurrentProducersNeverLoseAccounting) {
  constexpr unsigned kWorkers = 4;
  constexpr uint64_t kPerWorker = 10000;
  Tracer& tracer = Tracer::Get();
  // Small rings force heavy wraparound while all producers are writing.
  tracer.Enable(kModeFull, /*ring_capacity=*/256);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kWorkers; ++t) {
    workers.emplace_back([t] {
      smp::ScopedCpu bind(t);
      for (uint64_t i = 0; i < kPerWorker; ++i) {
        Emit(EventId::kCacheHit, t, i);
        if (i % 64 == 0) {
          Span span(EventId::kSyscall, HistId::kSyscallNs, t);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  tracer.Disable();
  std::vector<Event> events = tracer.Drain();
  // Conservation: every recorded event is either drained or counted lost.
  EXPECT_EQ(events.size() + tracer.events_lost(), tracer.events_recorded());
  EXPECT_GE(tracer.events_recorded(), kWorkers * kPerWorker);
  // Drain orders by (cpu, ts): within each track time never goes backwards
  // — the invariant the Chrome exporter (and trace-validate) rely on.
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].cpu == events[i - 1].cpu) {
      EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
    } else {
      EXPECT_GT(events[i].cpu, events[i - 1].cpu);
    }
  }
  uint64_t hist_count =
      Metrics::Get().hist(HistId::kSyscallNs).Snapshot().count;
  EXPECT_EQ(hist_count, kWorkers * (kPerWorker / 64 + (kPerWorker % 64 != 0)));
}

// --- /metrics over the loopback stream path ----------------------------------

class MetricsServerTest : public ::testing::Test {
 protected:
  MetricsServerTest() : machine_(128ull << 20, 4096) {
    kernel::KernelConfig config;
    config.mode = kernel::KernelMode::kSvaSafe;
    kernel_ = std::make_unique<kernel::Kernel>(machine_, config);
    Status s = kernel_->Boot();
    EXPECT_TRUE(s.ok()) << s.ToString();
    Tracer::Get().Reset();
    Metrics::Get().Reset();
  }
  ~MetricsServerTest() override {
    Tracer::Get().Reset();
    Metrics::Get().Reset();
  }

  hw::Machine machine_;
  std::unique_ptr<kernel::Kernel> kernel_;
};

TEST_F(MetricsServerTest, ServesExpositionOverLoopbackByteExact) {
  kernel::MetricsServer server(*kernel_);
  ASSERT_TRUE(server.Start().ok());
  net::LoopbackClient client(*kernel_->net());
  auto conn = client.OpenStream(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(client.SendStream(*conn, "GET /metrics HTTP/1.0\r\n\r\n").ok());
  auto served = server.ServeOne();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  // Byte-exact: what the client drained off the NIC is what the server
  // claims it put on the wire.
  std::string received = client.TakeStream(*conn);
  EXPECT_EQ(received, *served);
  EXPECT_EQ(received.find("HTTP/1.0 200 OK\r\n"), 0u);
  // Every counter surface shows up in the body.
  EXPECT_NE(received.find("sva_kernel_syscalls_total"), std::string::npos);
  EXPECT_NE(received.find("sva_pchk_bounds_checks_total"), std::string::npos);
  EXPECT_NE(received.find("sva_svaos_syscalls_dispatched_total"),
            std::string::npos);
  EXPECT_NE(received.find("sva_net_tx_frames_total"), std::string::npos);
  EXPECT_NE(received.find("{pool="), std::string::npos);
  // Framing: Content-Length matches the actual body.
  size_t header_end = received.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  size_t body_len = received.size() - header_end - 4;
  std::string want = "Content-Length: " + std::to_string(body_len) + "\r\n";
  EXPECT_NE(received.find(want), std::string::npos);
}

TEST_F(MetricsServerTest, UnknownPathGets404) {
  kernel::MetricsServer server(*kernel_);
  ASSERT_TRUE(server.Start().ok());
  net::LoopbackClient client(*kernel_->net());
  auto conn = client.OpenStream(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(client.SendStream(*conn, "GET /health HTTP/1.0\r\n\r\n").ok());
  auto served = server.ServeOne();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(client.TakeStream(*conn), *served);
  EXPECT_EQ(served->find("HTTP/1.0 404 Not Found\r\n"), 0u);
}

TEST_F(MetricsServerTest, ServesBackToBackConnections) {
  kernel::MetricsServer server(*kernel_);
  ASSERT_TRUE(server.Start().ok());
  net::LoopbackClient client(*kernel_->net());
  for (int i = 0; i < 3; ++i) {
    auto conn = client.OpenStream(server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        client.SendStream(*conn, "GET /metrics HTTP/1.0\r\n\r\n").ok());
    auto served = server.ServeOne();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(client.TakeStream(*conn), *served);
  }
  // Scraping itself bumps the counters it reports.
  EXPECT_GE(kernel_->stats().syscalls, 3u * 4u);
}

// --- Task-lifecycle events through the continuous drainer --------------------

// The full fork → exec → exit → wait lifecycle, consumed the way the benches
// consume traces: a ContinuousDrainer thread draining the rings while the
// kernel runs. Fork and exec must emit entry/exit spans (feeding kForkNs /
// kExecNs), fork must emit the conn.forked instant tying child to parent,
// and the demand pager's page-fault spans must show up from the user copies.
TEST_F(MetricsServerTest, ForkExecLifecycleEmitsSpansAndConnForkedInstant) {
  Tracer::Get().Enable(kModeFull, /*ring_capacity=*/4096);
  ContinuousDrainer drainer;
  drainer.Start();
  auto call = [this](kernel::Sys n, uint64_t a0 = 0) {
    auto r = kernel_->Syscall(n, a0);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
    return r.ok() ? *r : ~uint64_t{0};
  };
  uint64_t user = kernel::kUserVirtualBase +
                  static_cast<uint64_t>(kernel_->current_pid()) * 0x100000;
  ASSERT_TRUE(kernel_->PokeUserString(user, "/bin/true").ok());
  const uint64_t child = call(kernel::Sys::kFork);
  ASSERT_EQ(child, 2u);
  // Run the child: switch to it, exec, exit; then reap it from the parent.
  ASSERT_TRUE(kernel_->Yield().ok());
  EXPECT_EQ(call(kernel::Sys::kExecve, user), 0u);
  EXPECT_EQ(call(kernel::Sys::kExit, 0), 0u);
  EXPECT_EQ(call(kernel::Sys::kWaitPid, child), child);
  std::vector<Event> events = drainer.Stop();
  Tracer::Get().Disable();

  bool fork_span = false, exec_span = false, conn_forked = false;
  bool fault_span = false;
  for (const Event& e : events) {
    if (e.id == EventId::kFork && e.phase == Phase::kSpan && e.a0 == 1u) {
      fork_span = true;
    }
    if (e.id == EventId::kExec && e.phase == Phase::kSpan && e.a0 == child) {
      exec_span = true;
    }
    if (e.id == EventId::kConnForked && e.phase == Phase::kInstant) {
      conn_forked = true;
      EXPECT_EQ(e.a0, child);  // a0 = child pid, a1 = parent pid.
      EXPECT_EQ(e.a1, 1u);
    }
    if (e.id == EventId::kPageFault && e.phase == Phase::kSpan) {
      fault_span = true;
    }
  }
  EXPECT_TRUE(fork_span) << "no fork span tagged with the parent pid";
  EXPECT_TRUE(exec_span) << "no exec span tagged with the child pid";
  EXPECT_TRUE(conn_forked) << "no conn.forked instant event";
  EXPECT_TRUE(fault_span) << "user copies should fault pages in under trace";
  EXPECT_GE(Metrics::Get().hist(HistId::kForkNs).Snapshot().count, 1u);
  EXPECT_GE(Metrics::Get().hist(HistId::kExecNs).Snapshot().count, 1u);
  EXPECT_GE(Metrics::Get().hist(HistId::kPageFaultNs).Snapshot().count, 1u);
}

// --- Determinism: identical counters across replicas -------------------------

// Runs one fixed syscall workload against a fresh kernel and returns its
// metrics exposition with the timing histograms zeroed out of the picture
// (counters only). svm-run --cpus N relies on this invariant: replicas of a
// deterministic workload must agree on every count.
std::string RunDeterministicReplica() {
  hw::Machine machine(128ull << 20, 4096);
  kernel::KernelConfig config;
  config.mode = kernel::KernelMode::kSvaSafe;
  kernel::Kernel kernel(machine, config);
  EXPECT_TRUE(kernel.Boot().ok());
  uint64_t user = kernel::kUserVirtualBase +
                  static_cast<uint64_t>(kernel.current_pid()) * 0x100000;
  EXPECT_TRUE(kernel.PokeUserString(user, "/tmp/replica").ok());
  auto call = [&kernel](kernel::Sys n, uint64_t a0 = 0, uint64_t a1 = 0,
                        uint64_t a2 = 0) {
    auto r = kernel.Syscall(n, a0, a1, a2);
    EXPECT_TRUE(r.ok());
    return r.ok() ? *r : ~uint64_t{0};
  };
  uint64_t fd = call(kernel::Sys::kOpen, user, 1);
  for (int i = 0; i < 32; ++i) {
    call(kernel::Sys::kWrite, fd, user + 4096, 512);
  }
  call(kernel::Sys::kLseek, fd, 0, 0);
  for (int i = 0; i < 32; ++i) {
    call(kernel::Sys::kRead, fd, user + 8192, 512);
  }
  call(kernel::Sys::kClose, fd);
  call(kernel::Sys::kPipe, user + 128);
  uint32_t fds[2];
  EXPECT_TRUE(kernel.PeekUser(user + 128, fds, 8).ok());
  for (int i = 0; i < 16; ++i) {
    call(kernel::Sys::kWrite, fds[1], user + 4096, 256);
    call(kernel::Sys::kRead, fds[0], user + 8192, 256);
  }
  call(kernel::Sys::kGetPid);
  kernel::MetricsServer server(kernel);
  return server.RenderText();
}

// Strips the sva_epoch_* lines from an exposition. The epoch-reclamation
// counters read from the process-global smp::EpochDomain::Global(), which
// every kernel instance in this process shares, so sequential replicas see
// them accumulate. Every other metric is per-kernel and must match exactly.
std::string WithoutProcessGlobalLines(const std::string& text) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size() - 1;
    }
    std::string_view line(text.data() + pos, eol - pos + 1);
    if (line.find("sva_epoch_") == std::string_view::npos) {
      out.append(line);
    }
    pos = eol + 1;
  }
  return out;
}

TEST_F(TraceTest, ReplicasOfDeterministicWorkloadAgreeOnAllCounters) {
  // The exposition includes the sva_*_total counter lines; with tracing off
  // the histogram sections are all empty, so whole-text equality (modulo the
  // process-global epoch-domain lines, which accumulate across replicas by
  // design) means every per-kernel counter (kernel, metapool, per-pool,
  // SVA-OS, net) matched.
  std::string first = RunDeterministicReplica();
  EXPECT_NE(first.find("sva_pchk_bounds_checks_total"), std::string::npos);
  EXPECT_NE(first.find("sva_epoch_reclaimed_total"), std::string::npos);
  std::string first_stable = WithoutProcessGlobalLines(first);
  for (int replica = 1; replica < 3; ++replica) {
    EXPECT_EQ(first_stable, WithoutProcessGlobalLines(RunDeterministicReplica()))
        << "replica " << replica;
  }
}

}  // namespace
}  // namespace sva::trace
