// Allocator-correlation tests (Section 4.3/6.2): kernel pool allocators map
// to per-descriptor metapools, ordinary allocators merge per size class (or
// globally when the class relationship is not exposed), and vmalloc-style
// allocators are ordinary.
#include <gtest/gtest.h>

#include "src/analysis/pointsto.h"
#include "src/safety/compiler.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::analysis {
namespace {

std::unique_ptr<vir::Module> Parse(const char* text) {
  auto m = vir::ParseModule(text);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m).value();
}

TEST(AllocatorCorrelationTest, DistinctCachesGetDistinctMetapools) {
  auto m = Parse(R"(
module "caches"
declare i8* @kmem_cache_create(i64)
declare i8* @kmem_cache_alloc(i8*)

global @cache_a : i8*
global @cache_b : i8*

define void @boot() {
entry:
  %a = call i8* @kmem_cache_create(i64 96)
  store i8* %a, i8** @cache_a
  %b = call i8* @kmem_cache_create(i64 24)
  store i8* %b, i8** @cache_b
  ret void
}
define void @use() {
entry:
  %ca = load i8*, i8** @cache_a
  %oa = call i8* @kmem_cache_alloc(i8* %ca)
  store i8 1, i8* %oa
  %cb = load i8*, i8** @cache_b
  %ob = call i8* @kmem_cache_alloc(i8* %cb)
  store i8 2, i8* %ob
  ret void
}
)");
  auto report = safety::RunSafetyCompiler(*m);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  vir::Function* use = m->GetFunction("use");
  const auto& insts = use->blocks()[0]->instructions();
  // Instruction layout shifts with instrumentation; find the two
  // kmem_cache_alloc calls.
  std::vector<std::string> pools;
  for (const auto& inst : insts) {
    const auto* call = dynamic_cast<const vir::CallInst*>(inst.get());
    if (call != nullptr && call->called_function() != nullptr &&
        call->called_function()->name() == "kmem_cache_alloc") {
      pools.push_back(m->MetapoolOf(call));
    }
  }
  ASSERT_EQ(pools.size(), 2u);
  EXPECT_FALSE(pools[0].empty());
  // Two kernel pools -> two metapools (no false merging).
  EXPECT_NE(pools[0], pools[1]);
}

TEST(AllocatorCorrelationTest, SameCacheSitesMerge) {
  auto m = Parse(R"(
module "samecache"
declare i8* @kmem_cache_create(i64)
declare i8* @kmem_cache_alloc(i8*)

global @cache : i8*

define void @boot() {
entry:
  %c = call i8* @kmem_cache_create(i64 64)
  store i8* %c, i8** @cache
  ret void
}
define void @site1() {
entry:
  %c = load i8*, i8** @cache
  %o = call i8* @kmem_cache_alloc(i8* %c)
  store i8 1, i8* %o
  ret void
}
define void @site2() {
entry:
  %c = load i8*, i8** @cache
  %o = call i8* @kmem_cache_alloc(i8* %c)
  store i8 2, i8* %o
  ret void
}
)");
  auto report = safety::RunSafetyCompiler(*m);
  ASSERT_TRUE(report.ok());
  // Both allocation sites draw from one kernel pool with internal reuse, so
  // they must share a metapool (a dangling pointer from site1's object
  // could otherwise cross metapools when site2 reuses the slot).
  std::vector<std::string> pools;
  for (const char* fn : {"site1", "site2"}) {
    for (vir::Instruction* inst : m->GetFunction(fn)->AllInstructions()) {
      const auto* call = dynamic_cast<const vir::CallInst*>(inst);
      if (call != nullptr && call->called_function() != nullptr &&
          call->called_function()->name() == "kmem_cache_alloc") {
        pools.push_back(m->MetapoolOf(call));
      }
    }
  }
  ASSERT_EQ(pools.size(), 2u);
  EXPECT_EQ(pools[0], pools[1]);
  EXPECT_GE(report->merged_by_kernel_pools, 1u);
}

TEST(AllocatorCorrelationTest, KmallocDifferentClassesStaySeparate) {
  auto m = Parse(R"(
module "classes"
declare i8* @kmalloc(i64)
define void @f() {
entry:
  %small = call i8* @kmalloc(i64 24)
  store i8 1, i8* %small
  %big = call i8* @kmalloc(i64 5000)
  store i8 2, i8* %big
  ret void
}
)");
  auto report = safety::RunSafetyCompiler(*m);
  ASSERT_TRUE(report.ok());
  std::vector<std::string> pools;
  for (vir::Instruction* inst : m->GetFunction("f")->AllInstructions()) {
    const auto* call = dynamic_cast<const vir::CallInst*>(inst);
    if (call != nullptr && call->called_function() != nullptr &&
        call->called_function()->name() == "kmalloc") {
      pools.push_back(m->MetapoolOf(call));
    }
  }
  ASSERT_EQ(pools.size(), 2u);
  // Different size classes never share slab pages, so the exposed
  // kmalloc/kmem_cache relationship keeps them in separate metapools.
  EXPECT_NE(pools[0], pools[1]);
}

TEST(AllocatorCorrelationTest, UnknownSizeKmallocMergesConservatively) {
  auto m = Parse(R"(
module "dynsize"
declare i8* @kmalloc(i64)
define void @f(i64 %n) {
entry:
  %a = call i8* @kmalloc(i64 %n)
  store i8 1, i8* %a
  %b = call i8* @kmalloc(i64 %n)
  store i8 2, i8* %b
  ret void
}
)");
  auto report = safety::RunSafetyCompiler(*m);
  ASSERT_TRUE(report.ok());
  std::vector<std::string> pools;
  for (vir::Instruction* inst : m->GetFunction("f")->AllInstructions()) {
    const auto* call = dynamic_cast<const vir::CallInst*>(inst);
    if (call != nullptr && call->called_function() != nullptr &&
        call->called_function()->name() == "kmalloc") {
      pools.push_back(m->MetapoolOf(call));
    }
  }
  ASSERT_EQ(pools.size(), 2u);
  // Dynamic sizes could land in any class: all such sites merge (the
  // conservative direction).
  EXPECT_EQ(pools[0], pools[1]);
}

TEST(AllocatorCorrelationTest, VmallocIsAnOrdinaryAllocator) {
  auto m = Parse(R"(
module "vm"
declare i8* @vmalloc(i64)
declare void @vfree(i8*)
define i8 @f(i64 %idx) {
entry:
  %region = call i8* @vmalloc(i64 8192)
  %slot = getelementptr i8* %region, i64 %idx
  %v = load i8, i8* %slot
  call void @vfree(i8* %region)
  ret i8 %v
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  ASSERT_EQ(pta.allocation_sites().size(), 1u);
  EXPECT_EQ(pta.allocation_sites()[0].allocator, "vmalloc");
  EXPECT_TRUE(pta.allocation_sites()[0].node->has_flag(
      PointsToNode::kHeap));
}

}  // namespace
}  // namespace sva::analysis
