#include <gtest/gtest.h>

#include "src/vir/builder.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::vir {
namespace {

TEST(StructuralVerifierTest, AcceptsWellFormedModule) {
  auto m = ParseModule(R"(
module "ok"
define i32 @f(i32 %x) {
entry:
  %y = add i32 %x, 1
  ret i32 %y
}
)");
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(VerifyModule(**m).ok());
}

TEST(StructuralVerifierTest, RejectsMissingTerminator) {
  Module m("bad");
  TypeContext& t = m.types();
  Function* fn = m.CreateFunction("f", t.FunctionTy(t.VoidTy(), {}), false);
  fn->CreateBlock("entry");  // Empty block, no terminator.
  Status s = VerifyModule(m);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no terminator"), std::string::npos);
}

TEST(StructuralVerifierTest, RejectsUseBeforeDef) {
  Module m("bad");
  TypeContext& t = m.types();
  Function* fn = m.CreateFunction("f", t.FunctionTy(t.I32(), {}), false);
  BasicBlock* bb = fn->CreateBlock("entry");
  IRBuilder b(m);
  b.SetInsertPoint(bb);
  // Build %a = add %b, 1; %b = add 1, 1; ret %a  (use before def).
  Value* one = m.GetInt32(1);
  Value* b_val = b.CreateAdd(one, one, "b");
  Value* a_val = b.CreateAdd(b_val, one, "a");
  b.CreateRet(a_val);
  // Manually swap the first two instructions to create the violation.
  // (Rebuild in wrong order instead: construct a new function.)
  Function* fn2 = m.CreateFunction("g", t.FunctionTy(t.I32(), {}), false);
  BasicBlock* bb2 = fn2->CreateBlock("entry");
  auto* add_b = new BinaryInst(Opcode::kAdd, one, one, "b");
  auto* add_a = new BinaryInst(Opcode::kAdd, add_b, one, "a");
  bb2->Append(std::unique_ptr<Instruction>(add_a));
  bb2->Append(std::unique_ptr<Instruction>(add_b));
  bb2->Append(std::make_unique<RetInst>(t.VoidTy(), add_a));
  Status s = VerifyFunction(m, *fn2);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("precede"), std::string::npos);
  EXPECT_TRUE(VerifyFunction(m, *fn).ok());
}

TEST(StructuralVerifierTest, RejectsDefNotDominatingUse) {
  // %v defined only on one path but used after the merge.
  auto m = ParseModule(R"(
module "bad"
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %v = add i32 1, 2
  br label %merge
b:
  br label %merge
merge:
  ret i32 %v
}
)");
  ASSERT_TRUE(m.ok());
  Status s = VerifyModule(**m);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dominate"), std::string::npos);
}

TEST(StructuralVerifierTest, AcceptsPhiMergeOfBothPaths) {
  auto m = ParseModule(R"(
module "ok"
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %v = add i32 1, 2
  br label %merge
b:
  %w = add i32 3, 4
  br label %merge
merge:
  %r = phi i32 [ %v, %a ], [ %w, %b ]
  ret i32 %r
}
)");
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(VerifyModule(**m).ok()) << VerifyModule(**m).ToString();
}

TEST(StructuralVerifierTest, RejectsPhiMissingPredecessor) {
  auto m = ParseModule(R"(
module "bad"
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %merge
a:
  %v = add i32 1, 2
  br label %merge
merge:
  %r = phi i32 [ %v, %a ]
  ret i32 %r
}
)");
  ASSERT_TRUE(m.ok());
  Status s = VerifyModule(**m);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("predecessors"), std::string::npos);
}

TEST(StructuralVerifierTest, RejectsCallArityMismatch) {
  auto m = ParseModule(R"(
module "bad"
declare i32 @two(i32, i32)
define i32 @f() {
entry:
  %r = call i32 @two(i32 1)
  ret i32 %r
}
)");
  ASSERT_TRUE(m.ok());
  Status s = VerifyModule(**m);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("arity"), std::string::npos);
}

TEST(StructuralVerifierTest, RejectsRetTypeMismatch) {
  auto m = ParseModule(R"(
module "bad"
define i64 @f() {
entry:
  ret i32 1
}
)");
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(VerifyModule(**m).ok());
}

TEST(DominatorTreeTest, DiamondDominance) {
  auto m = ParseModule(R"(
module "dom"
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %merge
b:
  br label %merge
merge:
  ret void
}
)");
  ASSERT_TRUE(m.ok());
  Function* fn = (*m)->GetFunction("f");
  DominatorTree dom(*fn);
  const BasicBlock* entry = fn->blocks()[0].get();
  const BasicBlock* a = fn->blocks()[1].get();
  const BasicBlock* b = fn->blocks()[2].get();
  const BasicBlock* merge = fn->blocks()[3].get();
  EXPECT_TRUE(dom.Dominates(entry, merge));
  EXPECT_TRUE(dom.Dominates(entry, a));
  EXPECT_FALSE(dom.Dominates(a, merge));
  EXPECT_FALSE(dom.Dominates(b, merge));
  EXPECT_TRUE(dom.Dominates(merge, merge));
  EXPECT_EQ(dom.ImmediateDominator(merge), entry);
  EXPECT_EQ(dom.ImmediateDominator(entry), nullptr);
}

TEST(DominatorTreeTest, UnreachableBlocksAreFlagged) {
  auto m = ParseModule(R"(
module "dom"
define void @f() {
entry:
  ret void
dead:
  ret void
}
)");
  ASSERT_TRUE(m.ok());
  Function* fn = (*m)->GetFunction("f");
  DominatorTree dom(*fn);
  EXPECT_TRUE(dom.IsReachable(fn->blocks()[0].get()));
  EXPECT_FALSE(dom.IsReachable(fn->blocks()[1].get()));
}

}  // namespace
}  // namespace sva::vir
