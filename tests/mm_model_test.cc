// Model-check battery for the virtual-memory subsystem's integrity
// invariants (the §4.3 properties, exercised as state-space probes rather
// than single examples):
//
//   I1. No user-accessible mapping of a kernel or page-table frame ever
//       exists — every attempt dies with a SafetyViolation at map time.
//   I2. TLB / page-table coherence: after any translation mutation plus its
//       shootdown, no CPU's TLB holds the stale entry.
//   I3. COW correctness: a forked page is shared until the first write;
//       breaking the share never loses a write and never leaks the other
//       side's data.
//   I4. Frame accounting: refcounts count mappings; teardown returns every
//       frame, and recycled frames come back zeroed.
//
// The concurrent battery drives create/fault/fork/destroy plus adversarial
// remap attempts from four virtual CPUs against one shared VmManager; it is
// labelled `concurrency` so the tsan preset replays it under the race
// detector, and the check-mmu-integrity ctest gate runs it by name.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/hw/machine.h"
#include "src/mm/frame_allocator.h"
#include "src/mm/vm.h"
#include "src/smp/percpu.h"
#include "src/svaos/svaos.h"

namespace sva::mm {
namespace {

constexpr uint64_t kPage = hw::kPageSize;

class MmuIntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    os_.ConfigureCpus(4);
    ASSERT_TRUE(vm_.Init().ok());
  }

  uint64_t MustResolve(AddressSpace& as, uint64_t vaddr, bool write) {
    auto r = vm_.Resolve(as, vaddr, write);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : 0;
  }

  hw::Machine machine_{256ull << 20};
  svaos::SvaOS os_{machine_};
  FrameAllocator frames_{machine_, os_};
  VmManager vm_{os_, frames_};
};

TEST_F(MmuIntegrityTest, DemandFillIsLazyZeroedAndWritable) {
  auto as = vm_.CreateAddressSpace(0x400000, 16, 64);
  ASSERT_TRUE(as.ok());
  EXPECT_EQ((*as)->resident_pages(), 0u);  // Nothing committed up front.

  uint64_t pa = MustResolve(**as, 0x400000 + 123, /*write=*/false);
  EXPECT_EQ(*machine_.memory().Read(pa, 8), 0u);  // Zero-filled.
  EXPECT_EQ((*as)->resident_pages(), 1u);
  EXPECT_EQ(machine_.mmu().frame_type(pa & ~(kPage - 1)),
            hw::FrameType::kUser);

  // Write through the resolved translation, read it back via a re-resolve.
  uint64_t wa = MustResolve(**as, 0x401000, /*write=*/true);
  ASSERT_TRUE(machine_.memory().Write(wa, 8, 0xFEEDu).ok());
  EXPECT_EQ(*machine_.memory().Read(
                MustResolve(**as, 0x401000, /*write=*/false), 8),
            0xFEEDu);

  VmStats s = vm_.stats();
  EXPECT_EQ(s.demand_fills, 2u);
  EXPECT_GE(s.page_faults, 2u);
  ASSERT_TRUE(vm_.Destroy(**as).ok());
}

TEST_F(MmuIntegrityTest, OutsideTheLimitIsASafetyViolation) {
  auto as = vm_.CreateAddressSpace(0x400000, 4, 8);
  ASSERT_TRUE(as.ok());
  // Below the base and beyond the frontier both fault like hardware.
  EXPECT_EQ(vm_.Resolve(**as, 0x3FF000, false).status().code(),
            StatusCode::kSafetyViolation);
  EXPECT_EQ(vm_.Resolve(**as, 0x400000 + 4 * kPage, true).status().code(),
            StatusCode::kSafetyViolation);
  // brk-style growth makes the page reachable without committing it.
  ASSERT_TRUE(vm_.ExtendLimit(**as, 6).ok());
  EXPECT_TRUE(vm_.Resolve(**as, 0x400000 + 4 * kPage, true).ok());
  // Growth past the hard cap is ResourceExhausted (kENoMem), not an abort.
  EXPECT_EQ(vm_.ExtendLimit(**as, 9).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(vm_.Destroy(**as).ok());
}

TEST_F(MmuIntegrityTest, CowForkSharesThenCopiesOnWrite) {
  auto parent = vm_.CreateAddressSpace(0x400000, 8, 16);
  auto child = vm_.CreateAddressSpace(0x600000, 8, 16);
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(child.ok());

  // Parent dirties three pages with distinct patterns.
  for (uint64_t p = 0; p < 3; ++p) {
    uint64_t pa = MustResolve(**parent, 0x400000 + p * kPage, true);
    ASSERT_TRUE(machine_.memory().Write(pa, 8, 0xA0 + p).ok());
  }
  ASSERT_TRUE(vm_.CloneCow(**parent, **child).ok());

  // Shared until written: same frame, refcount 2, identical contents.
  uint64_t parent_pa = MustResolve(**parent, 0x400000, false);
  uint64_t child_pa = MustResolve(**child, 0x600000, false);
  EXPECT_EQ(parent_pa, child_pa);
  EXPECT_EQ(frames_.RefCount(child_pa & ~(kPage - 1)), 2u);
  EXPECT_EQ(*machine_.memory().Read(child_pa, 8), 0xA0u);

  // Child write breaks the share: private frame, parent data untouched.
  uint64_t child_wa = MustResolve(**child, 0x600000, true);
  EXPECT_NE(child_wa & ~(kPage - 1), parent_pa & ~(kPage - 1));
  ASSERT_TRUE(machine_.memory().Write(child_wa, 8, 0xBEEF).ok());
  EXPECT_EQ(*machine_.memory().Read(
                MustResolve(**parent, 0x400000, false), 8),
            0xA0u);
  EXPECT_EQ(frames_.RefCount(parent_pa & ~(kPage - 1)), 1u);

  VmStats s = vm_.stats();
  EXPECT_EQ(s.forks_cow, 1u);
  EXPECT_GE(s.cow_faults, 1u);
  EXPECT_GE(s.cow_copies, 1u);
  ASSERT_TRUE(vm_.Destroy(**child).ok());
  ASSERT_TRUE(vm_.Destroy(**parent).ok());
}

TEST_F(MmuIntegrityTest, SoleOwnerCowBreakUpgradesInPlace) {
  auto parent = vm_.CreateAddressSpace(0x400000, 4, 8);
  auto child = vm_.CreateAddressSpace(0x600000, 4, 8);
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(child.ok());
  uint64_t pa = MustResolve(**parent, 0x400000, true);
  ASSERT_TRUE(machine_.memory().Write(pa, 8, 0x77).ok());
  ASSERT_TRUE(vm_.CloneCow(**parent, **child).ok());
  // The child exits before anyone writes: the parent becomes sole owner.
  ASSERT_TRUE(vm_.Destroy(**child).ok());
  uint64_t cow_copies_before = vm_.stats().cow_copies;
  uint64_t wa = MustResolve(**parent, 0x400000, true);
  EXPECT_EQ(wa & ~(kPage - 1), pa & ~(kPage - 1));  // Same frame: no copy.
  EXPECT_EQ(vm_.stats().cow_copies, cow_copies_before);
  EXPECT_EQ(*machine_.memory().Read(wa, 8), 0x77u);
  ASSERT_TRUE(vm_.Destroy(**parent).ok());
}

TEST_F(MmuIntegrityTest, KernelAndPageTableFramesNeverBecomeUserVisible) {
  auto as = vm_.CreateAddressSpace(0x400000, 8, 8);
  ASSERT_TRUE(as.ok());
  const uint32_t user_flags =
      hw::kPtePresent | hw::kPteWritable | hw::kPteUser;

  auto kframe = frames_.Allocate(hw::FrameType::kKernel);
  ASSERT_TRUE(kframe.ok());
  EXPECT_EQ(os_.MmuMap((*as)->asid(), 0x404000, *kframe, user_flags).code(),
            StatusCode::kSafetyViolation);
  EXPECT_FALSE(machine_.mmu().IsMapped((*as)->asid(), 0x404000));

  auto ptframe = frames_.Allocate(hw::FrameType::kPageTable);
  ASSERT_TRUE(ptframe.ok());
  EXPECT_EQ(
      os_.MmuMap((*as)->asid(), 0x405000, *ptframe, user_flags).code(),
      StatusCode::kSafetyViolation);
  // Even a kernel-only WRITABLE mapping of a page-table frame is refused.
  EXPECT_EQ(os_.MmuMap((*as)->asid(), 0x405000, *ptframe,
                       hw::kPtePresent | hw::kPteWritable)
                .code(),
            StatusCode::kSafetyViolation);

  // Protect is the same gate: a user page cannot be re-pointed by flag
  // games, and an existing mapping of a later-redeclared frame cannot be
  // upgraded to user visibility.
  uint64_t pa = MustResolve(**as, 0x400000, true);
  uint64_t frame = pa & ~(kPage - 1);
  ASSERT_TRUE(os_.DeclareFrameType(frame, hw::FrameType::kKernel).ok());
  EXPECT_EQ(
      os_.MmuProtect((*as)->asid(), 0x400000, user_flags).code(),
      StatusCode::kSafetyViolation);
  ASSERT_TRUE(os_.DeclareFrameType(frame, hw::FrameType::kUser).ok());

  frames_.Release(*kframe);
  frames_.Release(*ptframe);
  EXPECT_GE(os_.stats().mmu_checks_failed, 4u);
  ASSERT_TRUE(vm_.Destroy(**as).ok());
}

TEST_F(MmuIntegrityTest, ShootdownLeavesNoStaleEntryOnAnyCpu) {
  auto as = vm_.CreateAddressSpace(0x400000, 8, 8);
  ASSERT_TRUE(as.ok());
  const uint32_t asid = (*as)->asid();

  // Fill every CPU's TLB with the same translation.
  for (unsigned c = 0; c < 4; ++c) {
    smp::ScopedCpu bind(c);
    MustResolve(**as, 0x400000, false);
    hw::PageTableEntry pte;
    ASSERT_TRUE(os_.cpu(c).tlb().Lookup(asid, 0x400000, &pte));
  }
  uint64_t ipis_before = vm_.stats().shootdown_ipis;

  // Any mutation + shootdown must purge all four, not just the initiator.
  ASSERT_TRUE(os_.TlbShootdown(asid, 0x400000, /*entire_asid=*/false).ok());
  for (unsigned c = 0; c < 4; ++c) {
    hw::PageTableEntry pte;
    EXPECT_FALSE(os_.cpu(c).tlb().Lookup(asid, 0x400000, &pte))
        << "stale TLB entry on cpu " << c;
  }
  // The IPI was delivered through the SVA-OS interrupt path.
  EXPECT_GT(vm_.stats().shootdown_ipis, ipis_before);
  // Remote CPUs saw the invalidation.
  EXPECT_GE(os_.cpu(1).tlb().stats().shootdowns_received, 1u);

  // Reset is the macro version: every translation gone, fresh faults only.
  MustResolve(**as, 0x400000, true);
  ASSERT_TRUE(vm_.Reset(**as, 8).ok());
  EXPECT_EQ((*as)->resident_pages(), 0u);
  for (unsigned c = 0; c < 4; ++c) {
    hw::PageTableEntry pte;
    EXPECT_FALSE(os_.cpu(c).tlb().Lookup(asid, 0x400000, &pte));
  }
  ASSERT_TRUE(vm_.Destroy(**as).ok());
}

TEST_F(MmuIntegrityTest, TeardownReturnsEveryFrameZeroed) {
  size_t live_before = frames_.live_frames();
  auto as = vm_.CreateAddressSpace(0x400000, 8, 8);
  ASSERT_TRUE(as.ok());
  std::vector<uint64_t> dirtied;
  for (uint64_t p = 0; p < 8; ++p) {
    uint64_t pa = MustResolve(**as, 0x400000 + p * kPage, true);
    ASSERT_TRUE(machine_.memory().Write(pa, 8, 0xD00D).ok());
    dirtied.push_back(pa & ~(kPage - 1));
  }
  ASSERT_TRUE(vm_.Destroy(**as).ok());
  EXPECT_EQ(frames_.live_frames(), live_before);
  EXPECT_GE(frames_.free_frames(), 8u);
  for (uint64_t frame : dirtied) {
    EXPECT_EQ(machine_.mmu().frame_type(frame), hw::FrameType::kUnused);
  }
  // Recycled frames are scrubbed before reuse: no cross-space data leak.
  auto again = frames_.Allocate(hw::FrameType::kUser);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*machine_.memory().Read(*again, 8), 0u);
  frames_.Release(*again);
}

// The concurrent probe: four virtual CPUs hammer one VmManager with the
// full op mix — create/fault/write/fork/COW-break/adversarial-remap/destroy
// — plus a shared address space all CPUs fault concurrently. Integrity
// invariants are checked inside the loop (failures counted atomically) and
// globally after the join.
TEST_F(MmuIntegrityTest, ConcurrentFaultForkRemapDestroyKeepsInvariants) {
  constexpr unsigned kCpus = 4;
  constexpr unsigned kIters = 12;
  const uint32_t user_flags =
      hw::kPtePresent | hw::kPteWritable | hw::kPteUser;

  // A shared space: each CPU owns pages [cpu*4, cpu*4+4) so writes never
  // race byte-for-byte, but all fault/refill traffic hits one lock + TLBs.
  auto shared = vm_.CreateAddressSpace(0x8000000, 32, 32);
  ASSERT_TRUE(shared.ok());

  std::atomic<unsigned> failures{0};
  auto fail = [&](const char* what, const Status& st) {
    failures.fetch_add(1);
    std::fprintf(stderr, "invariant failed: %s: %s\n", what,
                 st.ToString().c_str());
  };

  std::vector<std::thread> cpus;
  for (unsigned t = 0; t < kCpus; ++t) {
    cpus.emplace_back([&, t] {
      smp::ScopedCpu bind(t);
      for (unsigned i = 0; i < kIters && failures.load() == 0; ++i) {
        const uint64_t tag = (static_cast<uint64_t>(t) << 32) | i;
        const uint64_t pbase =
            0x10000000ull + (t * kIters + i) * 0x200000ull;
        const uint64_t cbase = pbase + 0x100000ull;
        auto parent = vm_.CreateAddressSpace(pbase, 8, 16);
        auto child = vm_.CreateAddressSpace(cbase, 8, 16);
        if (!parent.ok() || !child.ok()) {
          fail("create", parent.ok() ? child.status() : parent.status());
          break;
        }
        // Fault four pages and stamp them.
        for (uint64_t p = 0; p < 4; ++p) {
          auto pa = vm_.Resolve(**parent, pbase + p * kPage, true);
          if (!pa.ok()) { fail("parent fault", pa.status()); break; }
          (void)machine_.memory().Write(*pa, 8, tag + p);
        }
        Status forked = vm_.CloneCow(**parent, **child);
        if (!forked.ok()) { fail("fork", forked); break; }
        // Child sees the parent's data through the shared frames.
        for (uint64_t p = 0; p < 4; ++p) {
          auto pa = vm_.Resolve(**child, cbase + p * kPage, false);
          if (!pa.ok()) { fail("child read", pa.status()); break; }
          if (*machine_.memory().Read(*pa, 8) != tag + p) {
            failures.fetch_add(1);
            std::fprintf(stderr, "child read wrong data (cpu %u it %u)\n",
                         t, i);
            break;
          }
        }
        // COW break on one side; the other side's view must not change.
        auto wa = vm_.Resolve(**child, cbase, true);
        if (!wa.ok()) { fail("cow break", wa.status()); break; }
        (void)machine_.memory().Write(*wa, 8, ~tag);
        auto ppa = vm_.Resolve(**parent, pbase, false);
        if (!ppa.ok()) { fail("parent reread", ppa.status()); break; }
        if (*machine_.memory().Read(*ppa, 8) != tag) {
          failures.fetch_add(1);
          std::fprintf(stderr, "COW leaked a write (cpu %u it %u)\n", t, i);
        }
        // Adversarial remap: a kernel frame pushed at the MMU ops with
        // user flags must die, every time, on every CPU, mid-churn.
        auto kframe = frames_.Allocate(hw::FrameType::kKernel);
        if (kframe.ok()) {
          Status st = os_.MmuMap((*parent)->asid(), pbase + 7 * kPage,
                                 *kframe, user_flags);
          if (st.code() != StatusCode::kSafetyViolation) {
            failures.fetch_add(1);
            std::fprintf(stderr,
                         "kernel frame mapped user-visible (cpu %u)\n", t);
          }
          frames_.Release(*kframe);
        }
        // Shared-space traffic: fault/refill this CPU's own pages.
        for (uint64_t p = 0; p < 4; ++p) {
          auto pa = vm_.Resolve(**shared,
                                0x8000000ull + (t * 4 + p) * kPage, true);
          if (!pa.ok()) { fail("shared fault", pa.status()); break; }
          (void)machine_.memory().Write(*pa, 8, tag);
        }
        Status d1 = vm_.Destroy(**child);
        Status d2 = vm_.Destroy(**parent);
        if (!d1.ok() || !d2.ok()) {
          fail("destroy", d1.ok() ? d2 : d1);
          break;
        }
      }
    });
  }
  for (std::thread& cpu : cpus) {
    cpu.join();
  }
  EXPECT_EQ(failures.load(), 0u);

  // Global sweep after the churn: the only live space is the shared one,
  // every mapped frame it holds is a declared user frame, and no
  // user-accessible PTE anywhere points at anything else.
  ASSERT_TRUE(vm_.Destroy(**shared).ok());
  EXPECT_EQ(frames_.live_frames(), 0u);
  smp::SvaOsStats os = os_.stats();
  EXPECT_GE(os.mmu_checks_failed, kCpus);  // Every attack died checked.
  EXPECT_GT(os.tlb_shootdowns, 0u);
  VmStats vs = vm_.stats();
  EXPECT_EQ(vs.forks_cow, kCpus * kIters);
  EXPECT_GE(vs.cow_copies, 1u);
}

}  // namespace
}  // namespace sva::mm
