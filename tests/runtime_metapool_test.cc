#include <gtest/gtest.h>

#include "src/runtime/metapool_runtime.h"

namespace sva::runtime {
namespace {

class MetaPoolRuntimeTest : public ::testing::Test {
 protected:
  MetaPoolRuntime rt_{EnforcementMode::kTrap};
};

TEST_F(MetaPoolRuntimeTest, PoolCreationAndLookup) {
  MetaPool* p = rt_.CreatePool("MP1", /*type_homogeneous=*/true,
                               /*element_size=*/16, /*complete=*/true);
  EXPECT_EQ(rt_.FindPool("MP1"), p);
  EXPECT_EQ(rt_.FindPool("MP2"), nullptr);
  EXPECT_EQ(rt_.GetPool("MP1", false, 0, false), p);
  EXPECT_TRUE(p->type_homogeneous());
  EXPECT_EQ(p->element_size(), 16u);
}

TEST_F(MetaPoolRuntimeTest, RegisterDropLifecycle) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  EXPECT_TRUE(rt_.RegisterObject(*p, 0x1000, 96).ok());
  EXPECT_EQ(p->live_objects(), 1u);
  // Double registration is a violation (overlap).
  EXPECT_FALSE(rt_.RegisterObject(*p, 0x1000, 96).ok());
  EXPECT_TRUE(rt_.DropObject(*p, 0x1000).ok());
  EXPECT_EQ(p->live_objects(), 0u);
  // Double free -> illegal free (guarantee T5).
  Status s = rt_.DropObject(*p, 0x1000);
  EXPECT_EQ(s.code(), StatusCode::kSafetyViolation);
  EXPECT_EQ(rt_.stats().frees_failed, 1u);
}

TEST_F(MetaPoolRuntimeTest, InteriorFreeIsIllegal) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x1000, 96).ok());
  EXPECT_FALSE(rt_.DropObject(*p, 0x1008).ok());
  EXPECT_EQ(rt_.violations().back().kind, CheckKind::kIllegalFree);
}

TEST_F(MetaPoolRuntimeTest, BoundsCheckWithinObjectPasses) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x1000, 96).ok());
  EXPECT_TRUE(rt_.BoundsCheck(*p, 0x1000, 0x105F).ok());
  EXPECT_TRUE(rt_.BoundsCheck(*p, 0x1010, 0x1000).ok());
}

TEST_F(MetaPoolRuntimeTest, BoundsCheckOverflowFails) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x1000, 96).ok());
  Status s = rt_.BoundsCheck(*p, 0x1000, 0x1060);  // One past the end.
  EXPECT_EQ(s.code(), StatusCode::kSafetyViolation);
  EXPECT_EQ(rt_.stats().bounds_failed, 1u);
  // Underflow too.
  EXPECT_FALSE(rt_.BoundsCheck(*p, 0x1000, 0x0FFF).ok());
}

TEST_F(MetaPoolRuntimeTest, BoundsCheckUnregisteredSourceCompletePool) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  // Complete pool: every legal object is registered, so an unknown source
  // pointer is itself a violation.
  EXPECT_FALSE(rt_.BoundsCheck(*p, 0x9000, 0x9004).ok());
}

TEST_F(MetaPoolRuntimeTest, ReducedChecksOnIncompletePool) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, /*complete=*/false);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x1000, 96).ok());
  // Unknown source, unknown target: nothing can be said -> pass (this is
  // the documented false-negative channel, I1/I2).
  EXPECT_TRUE(rt_.BoundsCheck(*p, 0x9000, 0x9004).ok());
  EXPECT_GT(rt_.stats().reduced_checks, 0u);
  // Unknown source indexing *into* a registered object: caught.
  EXPECT_FALSE(rt_.BoundsCheck(*p, 0x0F00, 0x1008).ok());
}

TEST_F(MetaPoolRuntimeTest, LoadStoreCheck) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x2000, 64).ok());
  EXPECT_TRUE(rt_.LoadStoreCheck(*p, 0x2020).ok());
  EXPECT_FALSE(rt_.LoadStoreCheck(*p, 0x3000).ok());
  // Incomplete pools: no load-store checks possible (I2).
  MetaPool* q = rt_.CreatePool("MQ", false, 0, false);
  EXPECT_TRUE(rt_.LoadStoreCheck(*q, 0x3000).ok());
}

TEST_F(MetaPoolRuntimeTest, DirectBoundsCheckSkipsLookup) {
  EXPECT_TRUE(rt_.BoundsCheckDirect(0x1000, 0x1004, 0x1060).ok());
  EXPECT_FALSE(rt_.BoundsCheckDirect(0x1000, 0x1060, 0x1060).ok());
}

TEST_F(MetaPoolRuntimeTest, GetBounds) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, false);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x4000, 128).ok());
  auto b = rt_.GetBounds(*p, 0x4040);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->start, 0x4000u);
  EXPECT_FALSE(rt_.GetBounds(*p, 0x5000).has_value());
}

TEST_F(MetaPoolRuntimeTest, IndirectCallCheck) {
  uint64_t set = rt_.RegisterTargetSet({0xAAAA, 0xBBBB, 0xCCCC});
  EXPECT_TRUE(rt_.IndirectCallCheck(0xBBBB, set).ok());
  EXPECT_FALSE(rt_.IndirectCallCheck(0xDDDD, set).ok());
  EXPECT_FALSE(rt_.IndirectCallCheck(0xAAAA, set + 17).ok());
  EXPECT_EQ(rt_.stats().indirect_performed, 3u);
  EXPECT_EQ(rt_.stats().indirect_failed, 2u);
}

TEST_F(MetaPoolRuntimeTest, UserspaceObjectStopsStraddling) {
  // Section 4.6: all of userspace is one object per reachable metapool, so
  // a buffer starting in userspace and ending in kernel space fails the
  // bounds check.
  constexpr uint64_t kUserBase = 0x0000000000010000;
  constexpr uint64_t kUserSize = 0x0000000010000000;
  MetaPool* p = rt_.CreatePool("MP_syscall", false, 0, true);
  rt_.RegisterUserspace(*p, kUserBase, kUserSize);
  // In-userspace access passes.
  EXPECT_TRUE(rt_.BoundsCheck(*p, kUserBase + 0x100, kUserBase + 0x200).ok());
  // Derived pointer in kernel space fails.
  EXPECT_FALSE(
      rt_.BoundsCheck(*p, kUserBase + 0x100, kUserBase + kUserSize).ok());
  // Registration is idempotent.
  EXPECT_TRUE(rt_.RegisterUserspace(*p, kUserBase, kUserSize).ok());
  EXPECT_EQ(p->live_objects(), 1u);
}

TEST_F(MetaPoolRuntimeTest, UserspaceRegistrationReportsOverlap) {
  MetaPool* p = rt_.CreatePool("MP_syscall", false, 0, true);
  // An object already sits in the middle of the would-be userspace range.
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x20000, 64).ok());
  // Previously this overlap was silently swallowed (the insert failed and
  // the return value was ignored), leaving userspace unregistered.
  Status s = rt_.RegisterUserspace(*p, 0x10000, 0x100000);
  EXPECT_EQ(s.code(), StatusCode::kSafetyViolation);
  EXPECT_EQ(rt_.violations().back().kind, CheckKind::kRegistration);
  // A differently-sized object at the same base is also reported, not
  // mistaken for the idempotent case.
  MetaPool* q = rt_.CreatePool("MP_other", false, 0, true);
  ASSERT_TRUE(rt_.RegisterUserspace(*q, 0x10000, 0x100000).ok());
  EXPECT_FALSE(rt_.RegisterUserspace(*q, 0x10000, 0x200000).ok());
}

TEST_F(MetaPoolRuntimeTest, UserspaceObjectAbuttingAddressSpaceTop) {
  // A userspace window ending exactly at UINT64_MAX must not wrap: checks
  // at the top byte pass, and overlap detection still works above it.
  MetaPool* p = rt_.CreatePool("MP_syscall", false, 0, true);
  constexpr uint64_t kBase = UINT64_MAX - 0xFFFF;
  ASSERT_TRUE(rt_.RegisterUserspace(*p, kBase, 0x10000).ok());
  EXPECT_TRUE(rt_.BoundsCheck(*p, kBase, UINT64_MAX).ok());
  EXPECT_FALSE(rt_.BoundsCheck(*p, kBase, kBase - 1).ok());
  EXPECT_FALSE(rt_.RegisterObject(*p, UINT64_MAX - 0xFF, 0x100).ok());
}

TEST_F(MetaPoolRuntimeTest, CacheDoesNotServeStaleBoundsAcrossReRegistration) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x1000, 0x100).ok());
  // Warm the cache with the large extent.
  EXPECT_TRUE(rt_.BoundsCheck(*p, 0x1000, 0x10FF).ok());
  ASSERT_TRUE(rt_.DropObject(*p, 0x1000).ok());
  // Same address, smaller object.
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x1000, 0x40).ok());
  // The old extent must now fail; the new extent passes.
  EXPECT_FALSE(rt_.BoundsCheck(*p, 0x1000, 0x10FF).ok());
  EXPECT_TRUE(rt_.BoundsCheck(*p, 0x1000, 0x103F).ok());
  // And load-store checks agree.
  EXPECT_FALSE(rt_.LoadStoreCheck(*p, 0x1080).ok());
  EXPECT_TRUE(rt_.LoadStoreCheck(*p, 0x1020).ok());
}

TEST_F(MetaPoolRuntimeTest, StatsReportCacheCounters) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x1000, 0x100).ok());
  rt_.ResetStats();
  EXPECT_TRUE(rt_.BoundsCheck(*p, 0x1000, 0x1008).ok());  // Miss + fill.
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(rt_.BoundsCheck(*p, 0x1000 + i, 0x1008).ok());  // Hits.
  }
  const CheckStats& stats = rt_.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 9u);
  EXPECT_GT(stats.splay_comparisons, 0u);  // The one miss splayed.
  EXPECT_NEAR(stats.cache_hit_rate(), 0.9, 1e-9);
  rt_.ResetStats();
  EXPECT_EQ(rt_.stats().cache_lookups(), 0u);
  EXPECT_EQ(rt_.stats().splay_comparisons, 0u);
}

TEST_F(MetaPoolRuntimeTest, CacheToggleAppliesToAllPools) {
  MetaPool* a = rt_.CreatePool("A", false, 0, true);
  rt_.set_lookup_cache_enabled(false);
  MetaPool* b = rt_.CreatePool("B", false, 0, true);  // Created after.
  EXPECT_FALSE(a->cache_enabled());
  EXPECT_FALSE(b->cache_enabled());
  ASSERT_TRUE(rt_.RegisterObject(*a, 0x1000, 0x100).ok());
  EXPECT_TRUE(rt_.BoundsCheck(*a, 0x1000, 0x1008).ok());
  EXPECT_TRUE(rt_.BoundsCheck(*a, 0x1000, 0x1008).ok());
  EXPECT_EQ(rt_.stats().cache_lookups(), 0u);
  rt_.set_lookup_cache_enabled(true);
  EXPECT_TRUE(a->cache_enabled());
  EXPECT_TRUE(b->cache_enabled());
  EXPECT_TRUE(rt_.BoundsCheck(*a, 0x1000, 0x1008).ok());
  EXPECT_TRUE(rt_.BoundsCheck(*a, 0x1000, 0x1008).ok());
  EXPECT_EQ(rt_.stats().cache_hits, 1u);
  EXPECT_EQ(rt_.stats().cache_misses, 1u);
}

TEST_F(MetaPoolRuntimeTest, RecordModeLogsButDoesNotTrap) {
  rt_.set_mode(EnforcementMode::kRecord);
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x1000, 16).ok());
  EXPECT_TRUE(rt_.BoundsCheck(*p, 0x1000, 0x2000).ok());  // No trap...
  EXPECT_EQ(rt_.violations().size(), 1u);                  // ...but logged.
  EXPECT_EQ(rt_.violations()[0].kind, CheckKind::kBounds);
  rt_.ClearViolations();
  EXPECT_TRUE(rt_.violations().empty());
}

TEST_F(MetaPoolRuntimeTest, StatsAccumulate) {
  MetaPool* p = rt_.CreatePool("MP", false, 0, true);
  ASSERT_TRUE(rt_.RegisterObject(*p, 0x1000, 16).ok());
  rt_.BoundsCheck(*p, 0x1000, 0x1008);
  rt_.LoadStoreCheck(*p, 0x1008);
  EXPECT_EQ(rt_.stats().total_performed(), 2u);
  EXPECT_EQ(rt_.stats().total_failed(), 0u);
  EXPECT_EQ(rt_.stats().registrations, 1u);
  rt_.ResetStats();
  EXPECT_EQ(rt_.stats().total_performed(), 0u);
}

}  // namespace
}  // namespace sva::runtime
