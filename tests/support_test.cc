#include <gtest/gtest.h>

#include "src/support/status.h"
#include "src/support/strings.h"

namespace sva {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = SafetyViolation("bounds check failed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kSafetyViolation);
  EXPECT_EQ(s.ToString(), "SAFETY_VIOLATION: bounds check failed");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kParseError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubler(Result<int> in) {
  SVA_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Internal("boom")).ok());
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
}

TEST(StringsTest, StrSplit) {
  auto pieces = StrSplit("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("kmem_cache_alloc", "kmem_"));
  EXPECT_FALSE(StartsWith("k", "kmem_"));
  EXPECT_TRUE(EndsWith("file.sva", ".sva"));
  EXPECT_FALSE(EndsWith("sva", ".sva"));
}

}  // namespace
}  // namespace sva
