// Differential battery for the SVM's execution tiers: every program in
// here runs on BOTH the tree-walking interpreter and the threaded-code
// tier, and the two executions must agree on everything observable —
// return value, status (including the exact trap message), step count, and
// the full CheckStats stream the run-time checks produced. Programs are
// generated from a seeded LCG (arithmetic chains and phi loops over every
// integer width) plus handwritten edge cases (MIN/-1 division, shifts by
// >= width, sign-extension round trips) and the six exploit scenarios.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/exploits/exploits.h"
#include "src/runtime/metapool_runtime.h"
#include "src/safety/compiler.h"
#include "src/support/strings.h"
#include "src/svm/svm.h"
#include "src/verifier/typechecker.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::svm {
namespace {

// Everything observable about one execution.
struct Observed {
  std::string status;
  uint64_t value = 0;
  uint64_t steps = 0;
  runtime::CheckStats checks;
};

// Runs `entry(arg)` in a fresh VM on the given tier, through the full
// pipeline (safety compiler -> verifiers -> SVM) so the program carries
// instrumented checks like real kernel bytecode.
Observed RunOnTier(const std::string& text, const std::string& entry,
                   const std::vector<uint64_t>& args, ExecTier tier) {
  Observed obs;
  auto parsed = vir::ParseModule(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  if (!parsed.ok()) {
    return obs;
  }
  auto module = std::move(*parsed);
  safety::SafetyCompilerOptions copts;
  auto report = safety::RunSafetyCompiler(*module, copts);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  Status verified = vir::VerifyModule(*module);
  EXPECT_TRUE(verified.ok()) << verified.ToString() << "\n" << text;
  Status typed = verifier::TypeCheckOrError(*module);
  EXPECT_TRUE(typed.ok()) << typed.ToString();
  SvmOptions options;
  options.interp.tier = tier;
  SecureVirtualMachine vm(options);
  auto loaded = vm.LoadModule(std::move(module));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  if (!loaded.ok()) {
    return obs;
  }
  ExecResult r = (*loaded)->Run(entry, args);
  obs.status = r.status.ToString();
  obs.value = r.status.ok() ? r.value : 0;
  obs.steps = r.steps;
  obs.checks = (*loaded)->pools().stats();
  return obs;
}

// Asserts bit-identical observations across the two tiers for one program.
void ExpectParity(const std::string& text, const std::string& entry,
                  const std::vector<uint64_t>& args,
                  const std::string& what) {
  Observed interp = RunOnTier(text, entry, args, ExecTier::kInterp);
  Observed threaded = RunOnTier(text, entry, args, ExecTier::kThreaded);
  EXPECT_EQ(interp.status, threaded.status) << what;
  EXPECT_EQ(interp.value, threaded.value) << what;
  EXPECT_EQ(interp.steps, threaded.steps) << what;
  EXPECT_EQ(interp.checks.bounds_performed, threaded.checks.bounds_performed)
      << what;
  EXPECT_EQ(interp.checks.bounds_failed, threaded.checks.bounds_failed)
      << what;
  EXPECT_EQ(interp.checks.loadstore_performed,
            threaded.checks.loadstore_performed)
      << what;
  EXPECT_EQ(interp.checks.loadstore_failed, threaded.checks.loadstore_failed)
      << what;
  EXPECT_EQ(interp.checks.indirect_performed,
            threaded.checks.indirect_performed)
      << what;
  EXPECT_EQ(interp.checks.indirect_failed, threaded.checks.indirect_failed)
      << what;
  EXPECT_EQ(interp.checks.frees_checked, threaded.checks.frees_checked)
      << what;
  EXPECT_EQ(interp.checks.frees_failed, threaded.checks.frees_failed) << what;
  EXPECT_EQ(interp.checks.registrations, threaded.checks.registrations)
      << what;
  EXPECT_EQ(interp.checks.drops, threaded.checks.drops) << what;
}

// --- Generated arithmetic chains ---------------------------------------------

// Deterministic LCG so failures reproduce from the seed alone.
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed * 2862933555777941757ull + 1) {}
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  }
};

const char* kIntOps[] = {"add",  "sub",  "mul",  "udiv", "sdiv", "urem",
                         "srem", "and",  "or",   "xor",  "shl",  "lshr",
                         "ashr"};
const unsigned kWidths[] = {8, 16, 32, 64};

// Constants biased toward the values where tiers could plausibly diverge:
// zero (division traps), all-ones (-1), the sign bit (MIN), width-sized
// shift amounts, and small numbers.
uint64_t EdgeConstant(Lcg& rng, unsigned bits) {
  uint64_t mask = bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  switch (rng.Next() % 6) {
    case 0: return 0;
    case 1: return mask;                        // -1 at this width.
    case 2: return uint64_t{1} << (bits - 1);   // MIN_INT at this width.
    case 3: return rng.Next() % (2 * bits);     // Shift-sized.
    case 4: return rng.Next() & mask;
    default: return rng.Next() % 7;
  }
}

// A straight-line chain: trunc the argument to the width, apply `ops`
// random binary ops against edge-biased constants, widen back, return.
std::string GenChainProgram(uint64_t seed, unsigned* width_out) {
  Lcg rng(seed);
  unsigned bits = kWidths[rng.Next() % 4];
  *width_out = bits;
  std::string w = "i" + std::to_string(bits);
  std::string text = "module \"gen_chain\"\n";
  text += "define i64 @f(i64 %x) {\nentry:\n";
  std::string cur;
  if (bits < 64) {
    text += "  %t0 = trunc i64 %x to " + w + "\n";
    cur = "%t0";
  } else {
    cur = "%x";
  }
  int ops = 8;
  for (int i = 0; i < ops; ++i) {
    const char* op = kIntOps[rng.Next() % 13];
    uint64_t c = EdgeConstant(rng, bits);
    std::string next = "%v" + std::to_string(i);
    text += "  " + next + " = " + op + " " + w + " " + cur + ", " +
            std::to_string(c) + "\n";
    cur = next;
  }
  if (bits < 64) {
    text += "  %r = zext " + w + " %cur to i64\n";
    // Patch the placeholder: the zext source is the last chain value.
    size_t pos = text.rfind("%cur");
    text.replace(pos, 4, cur);
    cur = "%r";
  }
  text += "  ret i64 " + cur + "\n}\n";
  return text;
}

// A counted loop with two phis (index + accumulator) whose body applies a
// random op per iteration — covers phi-edge moves, branch linking, and
// trap-inside-loop on both tiers.
std::string GenLoopProgram(uint64_t seed) {
  Lcg rng(seed);
  unsigned bits = kWidths[rng.Next() % 4];
  std::string w = "i" + std::to_string(bits);
  const char* op = kIntOps[rng.Next() % 13];
  uint64_t c = EdgeConstant(rng, bits);
  uint64_t iters = 3 + rng.Next() % 14;
  std::string text = "module \"gen_loop\"\n";
  text += "define i64 @f(i64 %x) {\nentry:\n";
  if (bits < 64) {
    text += "  %seed = trunc i64 %x to " + w + "\n";
  } else {
    text += "  %seed = add i64 %x, 0\n";
  }
  text += "  br label %loop\n";
  text += "loop:\n";
  text += "  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]\n";
  text += "  %acc = phi " + w + " [ %seed, %entry ], [ %acc2, %loop ]\n";
  text += "  %acc2 = " + std::string(op) + " " + w + " %acc, " +
          std::to_string(c) + "\n";
  text += "  %i2 = add i64 %i, 1\n";
  text += "  %done = icmp uge i64 %i2, " + std::to_string(iters) + "\n";
  text += "  br i1 %done, label %exit, label %loop\n";
  text += "exit:\n";
  if (bits < 64) {
    text += "  %r = zext " + w + " %acc2 to i64\n";
  } else {
    text += "  %r = add i64 %acc2, 0\n";
  }
  text += "  ret i64 %r\n}\n";
  return text;
}

TEST(TierParity, GeneratedArithmeticChains) {
  for (uint64_t seed = 1; seed <= 48; ++seed) {
    unsigned bits = 0;
    std::string text = GenChainProgram(seed, &bits);
    Lcg arg_rng(seed ^ 0x9e3779b97f4a7c15ull);
    for (int a = 0; a < 3; ++a) {
      uint64_t arg = EdgeConstant(arg_rng, bits);
      ExpectParity(text, "f", {arg},
                   StrCat("chain seed ", seed, " arg ", arg, "\n", text));
    }
  }
}

TEST(TierParity, GeneratedPhiLoops) {
  for (uint64_t seed = 100; seed <= 140; ++seed) {
    std::string text = GenLoopProgram(seed);
    Lcg arg_rng(seed);
    uint64_t arg = arg_rng.Next();
    ExpectParity(text, "f", {arg},
                 StrCat("loop seed ", seed, " arg ", arg, "\n", text));
  }
}

// --- Handwritten arithmetic edges --------------------------------------------

std::string BinProgram(const std::string& op, unsigned bits) {
  std::string w = "i" + std::to_string(bits);
  std::string text = "module \"edge\"\n";
  text += "define i64 @f(i64 %a, i64 %b) {\nentry:\n";
  if (bits < 64) {
    text += "  %at = trunc i64 %a to " + w + "\n";
    text += "  %bt = trunc i64 %b to " + w + "\n";
    text += "  %r = " + op + " " + w + " %at, %bt\n";
    text += "  %rw = zext " + w + " %r to i64\n";
    text += "  ret i64 %rw\n}\n";
  } else {
    text += "  %r = " + op + " i64 %a, %b\n";
    text += "  ret i64 %r\n}\n";
  }
  return text;
}

TEST(TierParity, DivisionOverflowTrapsOnBothTiers) {
  // The headline bug: MIN/-1 must be a SafetyViolation (never host UB), at
  // every width, for both sdiv and srem.
  for (const char* op : {"sdiv", "srem"}) {
    for (unsigned bits : kWidths) {
      uint64_t min_int = uint64_t{1} << (bits - 1);
      uint64_t minus1 = bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
      std::string text = BinProgram(op, bits);
      Observed r =
          RunOnTier(text, "f", {min_int, minus1}, ExecTier::kThreaded);
      EXPECT_NE(r.status.find("integer overflow in division"),
                std::string::npos)
          << op << " i" << bits << ": " << r.status;
      ExpectParity(text, "f", {min_int, minus1},
                   StrCat(op, " MIN/-1 at i", bits));
      // Near-misses must NOT trap: MIN/-2, (MIN+1)/-1.
      ExpectParity(text, "f", {min_int, minus1 - 1},
                   StrCat(op, " MIN/-2 at i", bits));
      ExpectParity(text, "f", {min_int + 1, minus1},
                   StrCat(op, " (MIN+1)/-1 at i", bits));
    }
  }
}

TEST(TierParity, DivisionByZeroTrapsOnBothTiers) {
  for (const char* op : {"udiv", "sdiv", "urem", "srem"}) {
    for (unsigned bits : {8u, 64u}) {
      std::string text = BinProgram(op, bits);
      Observed r = RunOnTier(text, "f", {42, 0}, ExecTier::kThreaded);
      EXPECT_NE(r.status.find("SAFETY_VIOLATION"), std::string::npos)
          << op << " i" << bits << ": " << r.status;
      ExpectParity(text, "f", {42, 0}, StrCat(op, " by zero at i", bits));
    }
  }
}

TEST(TierParity, ShiftByWidthAndBeyond) {
  for (const char* op : {"shl", "lshr", "ashr"}) {
    for (unsigned bits : kWidths) {
      std::string text = BinProgram(op, bits);
      for (uint64_t amount : {uint64_t{bits - 1}, uint64_t{bits},
                              uint64_t{bits + 1}, uint64_t{200}}) {
        // A negative-looking value exercises the ashr sign fill.
        uint64_t sign_bit = uint64_t{1} << (bits - 1);
        ExpectParity(text, "f", {sign_bit | 5, amount},
                     StrCat(op, " i", bits, " by ", amount));
      }
    }
  }
}

TEST(TierParity, AShrSignFillSemantics) {
  // ashr of a negative value by >= width must yield all-ones at the
  // operating width (the sign fill), not zero, on both tiers.
  std::string text = BinProgram("ashr", 8);
  Observed r = RunOnTier(text, "f", {0x80, 8}, ExecTier::kThreaded);
  EXPECT_EQ(r.status, "OK");
  EXPECT_EQ(r.value, 0xFFu);
  ExpectParity(text, "f", {0x80, 8}, "ashr i8 sign fill");
  Observed pos = RunOnTier(text, "f", {0x7F, 9}, ExecTier::kThreaded);
  EXPECT_EQ(pos.value, 0u);  // Positive value: zero fill.
}

TEST(TierParity, SignExtensionRoundTrips) {
  // trunc/sext/zext chains across widths: sext of a sign-set narrow value
  // must produce the wide two's-complement pattern on both tiers.
  const char* text = R"(
module "roundtrip"
define i64 @f(i64 %x) {
entry:
  %a = trunc i64 %x to i8
  %b = sext i8 %a to i32
  %c = trunc i32 %b to i16
  %d = sext i16 %c to i64
  %e = zext i16 %c to i64
  %r = xor i64 %d, %e
  ret i64 %r
}
)";
  Observed r = RunOnTier(text, "f", {0x80}, ExecTier::kThreaded);
  EXPECT_EQ(r.status, "OK");
  // d = 0xFFFF...FF80, e = 0x0000FF80; xor = 0xFFFFFFFFFFFF0000.
  EXPECT_EQ(r.value, 0xFFFFFFFFFFFF0000ull);
  for (uint64_t arg : {uint64_t{0x80}, uint64_t{0x7F}, uint64_t{0xFFFF},
                       uint64_t{0x8000}, ~uint64_t{0}}) {
    ExpectParity(text, "f", {arg}, StrCat("sext round trip arg ", arg));
  }
}

TEST(TierParity, SDivSRemNonTrappingValues) {
  // Signed division semantics away from the traps: C++ truncation toward
  // zero at every width.
  for (const char* op : {"sdiv", "srem"}) {
    for (unsigned bits : kWidths) {
      std::string text = BinProgram(op, bits);
      uint64_t mask = bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
      ExpectParity(text, "f", {mask - 6, 3},
                   StrCat(op, " i", bits, " -7/3"));     // -7 / 3 = -2 r -1.
      ExpectParity(text, "f", {7, mask - 2},
                   StrCat(op, " i", bits, " 7/-3"));     // 7 / -3 = -2 r 1.
      ExpectParity(text, "f", {mask - 6, mask - 2},
                   StrCat(op, " i", bits, " -7/-3"));    // -7 / -3 = 2 r -1.
    }
  }
}

// --- Memory, calls, and the exploit suite ------------------------------------

TEST(TierParity, HeapCopyLoopInBoundsAndOverrun) {
  const char* text = R"(
module "copy"
declare i8* @kmalloc(i64)
declare void @kfree(i8*)

define i64 @f(i64 %len) {
entry:
  %src = call i8* @kmalloc(i64 64)
  %dst = call i8* @kmalloc(i64 32)
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %sp = getelementptr i8* %src, i64 %i
  %b = load i8, i8* %sp
  %dp = getelementptr i8* %dst, i64 %i
  store i8 %b, i8* %dp
  %i2 = add i64 %i, 1
  %done = icmp uge i64 %i2, %len
  br i1 %done, label %exit, label %loop
exit:
  call void @kfree(i8* %dst)
  call void @kfree(i8* %src)
  ret i64 %i2
}
)";
  ExpectParity(text, "f", {32}, "copy in bounds");
  ExpectParity(text, "f", {33}, "copy one past the end");
  ExpectParity(text, "f", {4096}, "copy far overrun");
}

TEST(TierParity, NestedAndRecursiveCalls) {
  const char* text = R"(
module "calls"
define i64 @leaf(i64 %n) {
entry:
  %r = mul i64 %n, 3
  ret i64 %r
}

define i64 @fib(i64 %n) {
entry:
  %base = icmp ule i64 %n, 1
  br i1 %base, label %done, label %rec
rec:
  %n1 = sub i64 %n, 1
  %n2 = sub i64 %n, 2
  %a = call i64 @fib(i64 %n1)
  %b = call i64 @fib(i64 %n2)
  %s = add i64 %a, %b
  ret i64 %s
done:
  ret i64 %n
}

define i64 @f(i64 %n) {
entry:
  %x = call i64 @fib(i64 %n)
  %y = call i64 @leaf(i64 %x)
  ret i64 %y
}
)";
  ExpectParity(text, "f", {10}, "fib(10) through both tiers");
  // Runaway recursion: both tiers must hit the same depth limit.
  const char* deep = R"(
module "deep"
define i64 @f(i64 %n) {
entry:
  %n2 = add i64 %n, 1
  %r = call i64 @f(i64 %n2)
  ret i64 %r
}
)";
  Observed r = RunOnTier(deep, "f", {0}, ExecTier::kThreaded);
  EXPECT_NE(r.status.find("depth"), std::string::npos) << r.status;
  ExpectParity(deep, "f", {0}, "runaway recursion");
}

TEST(TierParity, SwitchDispatch) {
  const char* text = R"(
module "sw"
define i64 @f(i64 %x) {
entry:
  switch i64 %x, label %other, [ 0, label %a ], [ 1, label %b ], [ 7, label %c ]
a:
  ret i64 100
b:
  ret i64 200
c:
  ret i64 300
other:
  %r = add i64 %x, 1000
  ret i64 %r
}
)";
  for (uint64_t arg : {uint64_t{0}, uint64_t{1}, uint64_t{7}, uint64_t{8},
                       ~uint64_t{0}}) {
    ExpectParity(text, "f", {arg}, StrCat("switch arg ", arg));
  }
}

TEST(TierParity, AllExploitScenariosAgree) {
  // The six exploit scenarios: detection, statuses, and check streams must
  // be identical per tier — both the benign and the malicious input.
  for (const exploits::ExploitScenario& s : exploits::AllScenarios()) {
    SvmOptions interp_options;
    interp_options.interp.tier = ExecTier::kInterp;
    SvmOptions threaded_options;
    threaded_options.interp.tier = ExecTier::kThreaded;
    auto a = exploits::RunScenario(s, interp_options);
    auto b = exploits::RunScenario(s, threaded_options);
    ASSERT_TRUE(a.ok()) << s.id << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << s.id << ": " << b.status().ToString();
    EXPECT_EQ(a->benign_status.ToString(), b->benign_status.ToString())
        << s.id;
    EXPECT_EQ(a->exploit_status.ToString(), b->exploit_status.ToString())
        << s.id;
    EXPECT_EQ(a->caught, b->caught) << s.id;
    EXPECT_EQ(a->violation, b->violation) << s.id;
  }
}

// --- Concurrency: replicas on both tiers at once -----------------------------

TEST(TierParity, ConcurrentReplicasAgreeAcrossTiers) {
  // Four threads run the same trapping program — two per tier — against
  // fresh VMs concurrently. Per-tier results and statuses must all match
  // the single-threaded run (the svm-run --cpus harness shape, extended
  // across tiers).
  std::string text = BinProgram("sdiv", 64);
  std::vector<uint64_t> args = {uint64_t{1} << 63, ~uint64_t{0}};
  Observed expect = RunOnTier(text, "f", args, ExecTier::kInterp);
  std::vector<Observed> results(4);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      ExecTier tier = (t % 2 == 0) ? ExecTier::kInterp : ExecTier::kThreaded;
      results[t] = RunOnTier(text, "f", args, tier);
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(results[t].status, expect.status) << "replica " << t;
    EXPECT_EQ(results[t].steps, expect.steps) << "replica " << t;
  }
}

}  // namespace
}  // namespace sva::svm
