#include <gtest/gtest.h>

#include "src/svaos/svaos.h"

namespace sva::svaos {
namespace {

class SvaOsTest : public ::testing::Test {
 protected:
  hw::Machine machine_;
  SvaOS os_{machine_};
};

TEST_F(SvaOsTest, IntegerStateRoundTrip) {
  machine_.cpu().control().pc = 0x1234;
  machine_.cpu().control().regs[3] = 99;
  SavedIntegerState saved;
  os_.SaveIntegerState(&saved);

  machine_.cpu().control().pc = 0x9999;
  machine_.cpu().control().regs[3] = 0;
  ASSERT_TRUE(os_.LoadIntegerState(saved).ok());
  EXPECT_EQ(machine_.cpu().control().pc, 0x1234u);
  EXPECT_EQ(machine_.cpu().control().regs[3], 99u);
  EXPECT_EQ(os_.stats().save_integer, 1u);
  EXPECT_EQ(os_.stats().load_integer, 1u);
}

TEST_F(SvaOsTest, LoadingUnsavedStateFails) {
  SavedIntegerState never_saved;
  EXPECT_FALSE(os_.LoadIntegerState(never_saved).ok());
  SavedFpState never_saved_fp;
  EXPECT_FALSE(os_.LoadFpState(never_saved_fp).ok());
}

TEST_F(SvaOsTest, LazyFpSave) {
  SavedFpState fp;
  // FP untouched: the lazy save is skipped (critical-path optimization of
  // Table 1).
  EXPECT_FALSE(os_.SaveFpState(&fp, /*always=*/false));
  EXPECT_EQ(os_.stats().save_fp_skipped, 1u);
  // Unconditional save works regardless.
  EXPECT_TRUE(os_.SaveFpState(&fp, /*always=*/true));
  // Dirty FP state is saved even lazily.
  machine_.cpu().WriteFpRegister(1, 2.5);
  SavedFpState fp2;
  EXPECT_TRUE(os_.SaveFpState(&fp2, /*always=*/false));
  EXPECT_EQ(fp2.fp.regs[1], 2.5);
  // Saving clears dirtiness; a further lazy save skips again.
  SavedFpState fp3;
  EXPECT_FALSE(os_.SaveFpState(&fp3, /*always=*/false));
  ASSERT_TRUE(os_.LoadFpState(fp2).ok());
  EXPECT_EQ(machine_.cpu().fp().regs[1], 2.5);
}

TEST_F(SvaOsTest, SyscallDispatchThroughInterruptContext) {
  uint64_t seen_arg = 0;
  bool was_privileged = true;
  ASSERT_TRUE(os_.RegisterSyscall(
                   7,
                   [&](const SyscallArgs& call) -> Result<uint64_t> {
                     seen_arg = call.args[0];
                     was_privileged = os_.WasPrivileged(call.icontext);
                     return call.args[0] * 2;
                   })
                  .ok());
  // Simulate a user process trapping in.
  machine_.cpu().control().privilege = hw::Privilege::kUser;
  auto r = os_.Syscall(7, {21, 0, 0, 0, 0, 0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 42u);
  EXPECT_EQ(seen_arg, 21u);
  EXPECT_FALSE(was_privileged);  // Interrupted context was user mode.
  // Privilege restored after return.
  EXPECT_EQ(machine_.cpu().control().privilege, hw::Privilege::kUser);
  EXPECT_EQ(os_.stats().syscalls_dispatched, 1u);
  EXPECT_EQ(os_.stats().icontext_created, 1u);
  // Unregistered syscalls fail.
  EXPECT_FALSE(os_.Syscall(99, {}).ok());
}

TEST_F(SvaOsTest, InternalSyscallSeesPrivilegedContext) {
  bool was_privileged = false;
  ASSERT_TRUE(os_.RegisterSyscall(
                   8,
                   [&](const SyscallArgs& call) -> Result<uint64_t> {
                     was_privileged = os_.WasPrivileged(call.icontext);
                     return 0;
                   })
                  .ok());
  machine_.cpu().control().privilege = hw::Privilege::kKernel;
  ASSERT_TRUE(os_.Syscall(8, {}).ok());
  EXPECT_TRUE(was_privileged);
}

TEST_F(SvaOsTest, IPushFunctionRunsOnResume) {
  // The signal-dispatch mechanism: a handler pushed onto the interrupted
  // context runs when the context resumes, with its argument.
  std::vector<uint64_t> delivered;
  ASSERT_TRUE(os_.RegisterSyscall(
                   9,
                   [&](const SyscallArgs& call) -> Result<uint64_t> {
                     os_.IPushFunction(
                         call.icontext,
                         [&](uint64_t sig) { delivered.push_back(sig); }, 11);
                     os_.IPushFunction(
                         call.icontext,
                         [&](uint64_t sig) { delivered.push_back(sig); }, 17);
                     return 0;
                   })
                  .ok());
  ASSERT_TRUE(os_.Syscall(9, {}).ok());
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], 11u);
  EXPECT_EQ(delivered[1], 17u);
  EXPECT_EQ(os_.stats().ipush_function, 2u);
}

TEST_F(SvaOsTest, IContextSaveLoadCommit) {
  ASSERT_TRUE(os_.RegisterSyscall(
                   10,
                   [&](const SyscallArgs& call) -> Result<uint64_t> {
                     SavedIntegerState state;
                     os_.IContextSave(call.icontext, &state);
                     // Restart-the-syscall idiom: rewind the saved pc.
                     state.control.pc -= 2;
                     EXPECT_TRUE(os_.IContextLoad(call.icontext, state).ok());
                     os_.IContextCommit(call.icontext);
                     return 0;
                   })
                  .ok());
  machine_.cpu().control().pc = 0x1000;
  ASSERT_TRUE(os_.Syscall(10, {}).ok());
  // The modified context was restored on return.
  EXPECT_EQ(machine_.cpu().control().pc, 0x0FFEu);
  EXPECT_EQ(os_.stats().icontext_committed, 1u);
}

TEST_F(SvaOsTest, InterruptVectorDispatch) {
  int fired = 0;
  ASSERT_TRUE(
      os_.RegisterInterrupt(32, [&](InterruptContext*) { ++fired; }).ok());
  ASSERT_TRUE(os_.RaiseInterrupt(32).ok());
  ASSERT_TRUE(os_.RaiseInterrupt(32).ok());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(os_.RaiseInterrupt(33).ok());
  EXPECT_FALSE(os_.RegisterInterrupt(4096, [](InterruptContext*) {}).ok());
}

TEST_F(SvaOsTest, MmuMediation) {
  ASSERT_TRUE(os_.MmuMap(0x10000, 0x2000,
                         hw::kPtePresent | hw::kPteWritable)
                  .ok());
  EXPECT_TRUE(machine_.mmu().IsMapped(0x10000));
  ASSERT_TRUE(os_.MmuUnmap(0x10000).ok());
  // The kernel cannot request SVM-reserved mappings for itself.
  EXPECT_FALSE(
      os_.MmuMap(0x10000, 0x2000, hw::kPteSvmReserved).ok());
  // SVM reserves its own page; the kernel cannot take it over.
  ASSERT_TRUE(os_.ReserveSvmPage(0x70000, 0x7000).ok());
  EXPECT_FALSE(os_.MmuMap(0x70000, 0x8000, hw::kPteWritable).ok());
  EXPECT_FALSE(os_.MmuUnmap(0x70000).ok());
  EXPECT_GE(os_.stats().mmu_ops, 4u);
}

TEST_F(SvaOsTest, IoOperations) {
  ASSERT_TRUE(os_.IoWrite(hw::Machine::kPortConsole, 'x').ok());
  EXPECT_EQ(machine_.console().output(), "x");
  ASSERT_TRUE(os_.IoWrite(hw::Machine::kPortTimer, 3).ok());
  EXPECT_EQ(*os_.IoRead(hw::Machine::kPortTimer), 3u);
  EXPECT_EQ(os_.stats().io_ops, 3u);
}

TEST_F(SvaOsTest, NestedInterruptContexts) {
  // A syscall handler that itself performs an internal syscall: contexts
  // nest and unwind in order.
  std::vector<std::string> trace;
  ASSERT_TRUE(os_.RegisterSyscall(
                   1,
                   [&](const SyscallArgs&) -> Result<uint64_t> {
                     trace.push_back("outer-enter");
                     auto inner = os_.Syscall(2, {});
                     EXPECT_TRUE(inner.ok());
                     trace.push_back("outer-exit");
                     return 0;
                   })
                  .ok());
  ASSERT_TRUE(os_.RegisterSyscall(
                   2,
                   [&](const SyscallArgs&) -> Result<uint64_t> {
                     trace.push_back("inner");
                     return 0;
                   })
                  .ok());
  ASSERT_TRUE(os_.Syscall(1, {}).ok());
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], "outer-enter");
  EXPECT_EQ(trace[1], "inner");
  EXPECT_EQ(trace[2], "outer-exit");
  EXPECT_EQ(os_.stats().icontext_created, 2u);
}

}  // namespace
}  // namespace sva::svaos
