// The event-queue suite: readiness edge cases for the kEvqCreate /
// kEvqCtl / kEvqWait syscalls (level-triggered re-arm, close-while-
// registered, wait timeout, EAGAIN on an empty backlog) plus a
// TSan-labelled stress test driving concurrent accept shards against a
// wait/ctl race on a shared queue.
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/hw/machine.h"
#include "src/kernel/kernel.h"
#include "src/net/client.h"
#include "src/net/net_stack.h"
#include "src/smp/percpu.h"
#include "src/trace/trace.h"

namespace sva {
namespace {

using kernel::Sys;

constexpr uint64_t kEInval = static_cast<uint64_t>(-22);
constexpr uint64_t kEBadF = static_cast<uint64_t>(-9);
constexpr uint64_t kENoEnt = static_cast<uint64_t>(-2);
constexpr uint64_t kEExist = static_cast<uint64_t>(-17);
constexpr uint64_t kEAgain = static_cast<uint64_t>(-11);
constexpr uint64_t kEAddrInUse = static_cast<uint64_t>(-98);

// A decoded kEvqWait record (the wire form is u64 data, u32 events, u32 fd).
struct Ev {
  uint64_t data = 0;
  uint32_t events = 0;
  uint32_t fd = 0;
};

class EvqTest : public ::testing::Test {
 protected:
  EvqTest() : machine_(128ull << 20, 4096) {
    kernel::KernelConfig config;
    config.mode = kernel::KernelMode::kSvaSafe;
    kernel_ = std::make_unique<kernel::Kernel>(machine_, config);
    Status s = kernel_->Boot();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  uint64_t Call(Sys n, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                uint64_t a3 = 0) {
    auto r = kernel_->Syscall(n, a0, a1, a2, a3);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ~0ull;
  }

  uint64_t Ctl(uint64_t evq, uint64_t op, uint64_t fd, uint64_t data = 0,
               uint32_t interest = 0) {
    return Call(Sys::kEvqCtl, evq,
                op | (static_cast<uint64_t>(interest) << 8), fd, data);
  }

  std::vector<Ev> Wait(uint64_t evq, uint64_t max, uint64_t timeout_us,
                       uint64_t ubuf = 0) {
    if (ubuf == 0) {
      ubuf = user(0x8000);
    }
    uint64_t n = Call(Sys::kEvqWait, evq, ubuf, max, timeout_us);
    EXPECT_LT(n, 1ull << 32);  // No errno leaked through.
    std::vector<Ev> out;
    if (n >= (1ull << 32)) {
      return out;
    }
    for (uint64_t i = 0; i < n; ++i) {
      uint8_t raw[16];
      EXPECT_TRUE(kernel_->PeekUser(ubuf + i * 16, raw, 16).ok());
      Ev e;
      std::memcpy(&e.data, raw, 8);
      std::memcpy(&e.events, raw + 8, 4);
      std::memcpy(&e.fd, raw + 12, 4);
      out.push_back(e);
    }
    return out;
  }

  uint64_t user(uint64_t off = 0) const {
    return kernel::kUserVirtualBase + 0x100000 + off;
  }

  hw::Machine machine_;
  std::unique_ptr<kernel::Kernel> kernel_;
};

TEST_F(EvqTest, CreateCtlAndWaitErrorPaths) {
  uint64_t evq = Call(Sys::kEvqCreate);
  EXPECT_LT(evq, 64u);

  // ctl through a non-evq fd, and on a non-socket target.
  uint64_t dgram = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
  EXPECT_EQ(Ctl(dgram, kernel::kEvqCtlAdd, dgram), kEBadF);
  ASSERT_TRUE(kernel_->PokeUserString(user(), "/evq/f").ok());
  uint64_t file = Call(Sys::kOpen, user(), 1);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, file), kEInval);

  // Add, double-add, mod/del of an unknown fd, unknown op.
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, dgram, 0xCAFE), 0u);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, dgram), kEExist);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlMod, file), kENoEnt);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlDel, file), kENoEnt);
  EXPECT_EQ(Ctl(evq, 99, dgram), kEInval);
  EXPECT_EQ(Call(Sys::kEvqWait, evq, user(0x8000), 0, 0), kEInval);

  // Waiting on a non-evq fd.
  EXPECT_EQ(Call(Sys::kEvqWait, dgram, user(0x8000), 8, 0), kEBadF);

  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlDel, dgram), 0u);
  EXPECT_EQ(Call(Sys::kClose, evq), 0u);
  // The closed evq fd no longer waits.
  EXPECT_EQ(Call(Sys::kEvqWait, evq, user(0x8000), 8, 0), kEBadF);
}

TEST_F(EvqTest, WaitTimesOutOnIdleQueue) {
  uint64_t evq = Call(Sys::kEvqCreate);
  uint64_t listener = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
  EXPECT_EQ(Call(Sys::kBind, listener, 8080), 0u);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, listener), 0u);
  uint64_t t0 = trace::NowNs();
  EXPECT_TRUE(Wait(evq, 8, /*timeout_us=*/2000).empty());
  EXPECT_GE(trace::NowNs() - t0, 2000ull * 1000);
}

TEST_F(EvqTest, ListenerReadinessDrivesAcceptAndEAgain) {
  uint64_t evq = Call(Sys::kEvqCreate);
  uint64_t listener = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
  EXPECT_EQ(Call(Sys::kBind, listener, 80), 0u);
  // Empty backlog: accept says EAGAIN, the queue says nothing ready.
  EXPECT_EQ(Call(Sys::kAccept, listener), kEAgain);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, listener, /*data=*/listener), 0u);
  EXPECT_TRUE(Wait(evq, 8, 0).empty());

  net::LoopbackClient client(*kernel_->net());
  ASSERT_TRUE(client.OpenStream(80).ok());
  auto events = Wait(evq, 8, 0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, listener);
  EXPECT_EQ(events[0].data, listener);
  EXPECT_NE(events[0].events & kernel::kEvqIn, 0u);

  uint64_t conn = Call(Sys::kAccept, listener);
  EXPECT_LT(conn, 64u);
  EXPECT_EQ(Call(Sys::kAccept, listener), kEAgain);  // Backlog drained.
  // Level-triggered cull: with the backlog empty the hint disappears.
  EXPECT_TRUE(Wait(evq, 8, 0).empty());
}

TEST_F(EvqTest, LevelTriggeredReArmAndEofHup) {
  uint64_t evq = Call(Sys::kEvqCreate);
  uint64_t listener = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
  EXPECT_EQ(Call(Sys::kBind, listener, 80), 0u);
  net::LoopbackClient client(*kernel_->net());
  auto stream = client.OpenStream(80);
  ASSERT_TRUE(stream.ok());
  uint64_t conn = Call(Sys::kAccept, listener);
  EXPECT_LT(conn, 64u);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, conn, /*data=*/0xBEEF), 0u);

  // A fresh connection is not readable: recv would block.
  EXPECT_EQ(Call(Sys::kRecv, conn, user(0x1000), 512), kEAgain);
  EXPECT_TRUE(Wait(evq, 8, 0).empty());

  ASSERT_TRUE(client.SendStream(*stream, "ping").ok());
  auto first = Wait(evq, 8, 0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].fd, conn);
  EXPECT_EQ(first[0].data, 0xBEEFu);
  // Level-triggered: unconsumed data is re-reported on the next wait.
  auto again = Wait(evq, 8, 0);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].fd, conn);

  EXPECT_EQ(Call(Sys::kRecv, conn, user(0x1000), 512), 4u);
  EXPECT_TRUE(Wait(evq, 8, 0).empty());  // Drained: hint culled.

  // A new edge re-arms the same watch.
  ASSERT_TRUE(client.SendStream(*stream, "pong").ok());
  ASSERT_EQ(Wait(evq, 8, 0).size(), 1u);
  EXPECT_EQ(Call(Sys::kRecv, conn, user(0x1000), 512), 4u);

  // FIN: the socket reports HUP and recv switches from EAGAIN to EOF.
  ASSERT_TRUE(client.CloseStream(*stream).ok());
  auto hup = Wait(evq, 8, 0);
  ASSERT_EQ(hup.size(), 1u);
  EXPECT_NE(hup[0].events & kernel::kEvqHup, 0u);
  EXPECT_EQ(Call(Sys::kRecv, conn, user(0x1000), 512), 0u);
}

TEST_F(EvqTest, CloseWhileRegisteredDropsTheWatch) {
  uint64_t evq = Call(Sys::kEvqCreate);
  uint64_t listener = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
  EXPECT_EQ(Call(Sys::kBind, listener, 80), 0u);
  net::LoopbackClient client(*kernel_->net());
  auto stream = client.OpenStream(80);
  ASSERT_TRUE(stream.ok());
  uint64_t conn = Call(Sys::kAccept, listener);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, conn), 0u);
  ASSERT_TRUE(client.SendStream(*stream, "pending").ok());
  // Close the watched fd with data queued and the hint hot: the watch must
  // vanish with the socket, epoll-style.
  EXPECT_EQ(Call(Sys::kClose, conn), 0u);
  EXPECT_TRUE(Wait(evq, 8, 0).empty());
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlDel, conn), kENoEnt);
  // And the queue keeps working for new registrations.
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, listener), 0u);
  ASSERT_TRUE(client.OpenStream(80).ok());
  EXPECT_EQ(Wait(evq, 8, 0).size(), 1u);
}

TEST_F(EvqTest, ReusePortShardsSpreadAcceptLoad) {
  // Two shard listeners on one port; a third bind WITHOUT the reuse flag
  // must be refused.
  uint64_t shard_a = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
  uint64_t shard_b = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
  uint64_t plain = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
  EXPECT_EQ(Call(Sys::kBind, shard_a, 80, /*flags=*/1), 0u);
  EXPECT_EQ(Call(Sys::kBind, shard_b, 80, /*flags=*/1), 0u);
  EXPECT_EQ(Call(Sys::kBind, plain, 80, /*flags=*/0), kEAddrInUse);

  uint64_t evq = Call(Sys::kEvqCreate);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, shard_a, shard_a), 0u);
  EXPECT_EQ(Ctl(evq, kernel::kEvqCtlAdd, shard_b, shard_b), 0u);

  constexpr int kStreams = 32;
  net::LoopbackClient client(*kernel_->net());
  for (int i = 0; i < kStreams; ++i) {
    ASSERT_TRUE(client.OpenStream(80).ok());
  }
  int accepted = 0;
  int from_a = 0;
  int from_b = 0;
  for (auto& e : Wait(evq, 8, 0)) {
    while (true) {
      uint64_t conn = Call(Sys::kAccept, e.fd);
      if (conn == kEAgain) {
        break;
      }
      ASSERT_LT(conn, 1ull << 32);
      ++accepted;
      (e.fd == shard_a ? from_a : from_b)++;
      EXPECT_EQ(Call(Sys::kClose, conn), 0u);
    }
  }
  EXPECT_EQ(accepted, kStreams);
  // The flow hash spreads 32 distinct ephemeral ports across both shards.
  EXPECT_GT(from_a, 0);
  EXPECT_GT(from_b, 0);
}

// The stress test the tsan preset runs: three shard workers each own a
// reuse-port listener and an event queue and serve connections end-to-end
// (evq_wait -> accept -> ctl add -> recv -> HUP -> ctl del -> close) while
// the driver thread injects SYN/data/FIN bursts, and a churn thread races
// ctl add/del against one shard's concurrent evq_wait.
TEST(EvqConcurrencyTest, ConcurrentAcceptShardsAndWaitCtlRace) {
  hw::Machine machine(256ull << 20, 8192);
  kernel::KernelConfig config;
  config.mode = kernel::KernelMode::kSvaSafe;
  kernel::Kernel kernel(machine, config);
  ASSERT_TRUE(kernel.Boot().ok());
  constexpr unsigned kShards = 3;
  constexpr int kConns = 48;
  kernel.svaos().ConfigureCpus(kShards + 2);
  const uint64_t ubase = kernel::kUserVirtualBase + 0x100000;

  auto call = [&kernel](Sys n, uint64_t a0 = 0, uint64_t a1 = 0,
                        uint64_t a2 = 0, uint64_t a3 = 0) -> uint64_t {
    auto r = kernel.Syscall(n, a0, a1, a2, a3);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ~0ull;
  };

  // Shard setup happens before the threads race.
  std::vector<uint64_t> listeners(kShards);
  std::vector<uint64_t> evqs(kShards);
  for (unsigned s = 0; s < kShards; ++s) {
    listeners[s] = call(
        Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
    ASSERT_EQ(call(Sys::kBind, listeners[s], 80, /*flags=*/1), 0u);
    evqs[s] = call(Sys::kEvqCreate);
    ASSERT_EQ(call(Sys::kEvqCtl, evqs[s], kernel::kEvqCtlAdd, listeners[s],
                   listeners[s]),
              0u);
  }

  std::atomic<int> closed{0};
  std::atomic<bool> drained{false};
  std::vector<std::thread> threads;

  // Shard workers on CPUs 1..kShards.
  for (unsigned s = 0; s < kShards; ++s) {
    threads.emplace_back([&, s] {
      smp::ScopedCpu bind(1 + s);
      uint64_t ubuf = ubase + 0x2000 + s * 0x2000;
      uint64_t rxbuf = ubuf + 0x1000;
      while (closed.load(std::memory_order_acquire) < kConns) {
        uint64_t n = call(Sys::kEvqWait, evqs[s], ubuf, 8, 500);
        ASSERT_LT(n, 1ull << 32);
        for (uint64_t i = 0; i < n; ++i) {
          uint8_t raw[16];
          ASSERT_TRUE(kernel.PeekUser(ubuf + i * 16, raw, 16).ok());
          uint32_t events;
          uint32_t fd;
          std::memcpy(&events, raw + 8, 4);
          std::memcpy(&fd, raw + 12, 4);
          if (fd == listeners[s]) {
            while (true) {
              uint64_t conn = call(Sys::kAccept, listeners[s]);
              if (conn == static_cast<uint64_t>(-11)) {
                break;  // EAGAIN: backlog drained.
              }
              ASSERT_LT(conn, 1ull << 32);
              ASSERT_EQ(call(Sys::kEvqCtl, evqs[s], kernel::kEvqCtlAdd,
                             conn, conn),
                        0u);
            }
            continue;
          }
          // Connection fd: drain; EOF (0) after HUP means done.
          uint64_t got = call(Sys::kRecv, fd, rxbuf, 2048);
          if (got == 0 && (events & kernel::kEvqHup) != 0) {
            ASSERT_EQ(call(Sys::kEvqCtl, evqs[s], kernel::kEvqCtlDel, fd),
                      0u);
            ASSERT_EQ(call(Sys::kClose, fd), 0u);
            closed.fetch_add(1, std::memory_order_acq_rel);
          }
        }
      }
    });
  }

  // Driver on CPU 0: the "client machine". SYN + payload + FIN per
  // connection, pumped through the NIC rx path (readiness callbacks fire on
  // this thread).
  threads.emplace_back([&] {
    smp::ScopedCpu bind(0);
    net::LoopbackClient client(*kernel.net());
    for (int i = 0; i < kConns; ++i) {
      auto stream = client.OpenStream(80);
      ASSERT_TRUE(stream.ok());
      ASSERT_TRUE(client.SendStream(*stream, "stress-ping").ok());
      ASSERT_TRUE(client.CloseStream(*stream).ok());
    }
    drained.store(true, std::memory_order_release);
  });

  // Churn on the last CPU: a wait/ctl race on shard 0's queue. kEvqOut
  // interest on a datagram socket is always ready, so shard 0's waits keep
  // returning while the watch appears and disappears under them.
  threads.emplace_back([&] {
    smp::ScopedCpu bind(kShards + 1);
    uint64_t dgram = call(
        Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
    while (closed.load(std::memory_order_acquire) < kConns) {
      uint64_t r = call(
          Sys::kEvqCtl, evqs[0],
          kernel::kEvqCtlAdd |
              (static_cast<uint64_t>(kernel::kEvqOut) << 8),
          dgram, 0x10);
      ASSERT_TRUE(r == 0 || r == static_cast<uint64_t>(-17));
      r = call(Sys::kEvqCtl, evqs[0], kernel::kEvqCtlDel, dgram);
      ASSERT_TRUE(r == 0 || r == static_cast<uint64_t>(-2));
      std::this_thread::yield();
    }
  });

  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_TRUE(drained.load());
  EXPECT_EQ(closed.load(), kConns);
  EXPECT_EQ(kernel.net()->stats().rx_violations.load(), 0u);
  EXPECT_TRUE(kernel.pools().violations().empty());
}

}  // namespace
}  // namespace sva
