// Focused tests of the SVA intrinsic operations as executed by the SVM:
// sva.getbounds out-parameters, pseudo-allocation behaviour, boundscheck
// reduced semantics on incomplete pools, and check accounting — the pieces
// the higher-level pipeline tests exercise only indirectly.
#include <gtest/gtest.h>

#include "src/runtime/metapool_runtime.h"
#include "src/svm/interp.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::svm {
namespace {

struct Harness {
  explicit Harness(const char* text) {
    auto parsed = vir::ParseModule(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    module = std::move(parsed).value();
    EXPECT_TRUE(vir::VerifyModule(*module).ok());
    pools = std::make_unique<runtime::MetaPoolRuntime>();
    interp = std::make_unique<Interpreter>(*module, *pools);
    EXPECT_TRUE(interp->Initialize().ok());
  }
  std::unique_ptr<vir::Module> module;
  std::unique_ptr<runtime::MetaPoolRuntime> pools;
  std::unique_ptr<Interpreter> interp;
};

TEST(IntrinsicsTest, GetBoundsWritesStartAndEnd) {
  Harness h(R"(
module "gb"
metapool MP1 complete
declare i8* @kmalloc(i64)

define i64 @probe(i64 %offset) {
entry:
  %obj = call i8* @kmalloc(i64 48)
  call void @pchk.reg.obj(%sva.metapool* @MP1, i8* %obj, i64 48)
  %outs = alloca i8*, i64 2
  %oute = getelementptr i8** %outs, i64 1
  %probe_at = getelementptr i8* %obj, i64 %offset
  call void @sva.getbounds(%sva.metapool* @MP1, i8* %probe_at, i8** %outs, i8** %oute)
  %start = load i8*, i8** %outs
  %end = load i8*, i8** %oute
  %si = ptrtoint i8* %start to i64
  %ei = ptrtoint i8* %end to i64
  %size = sub i64 %ei, %si
  call void @pchk.drop.obj(%sva.metapool* @MP1, i8* %obj)
  ret i64 %size
}
)");
  // Interior probe: getBounds finds the 48-byte object.
  ExecResult r = h.interp->Run("probe", {20});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 48u);
  // Probe past the object: not found, start == end == 0.
  r = h.interp->Run("probe", {64});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.value, 0u);
}

TEST(IntrinsicsTest, ReducedBoundsCheckSemantics) {
  Harness h(R"(
module "reduced"
metapool MPI
declare i8* @kmalloc(i64)

define void @unregistered_src(i64 %from, i64 %to) {
entry:
  %obj = call i8* @kmalloc(i64 32)
  call void @pchk.reg.obj(%sva.metapool* @MPI, i8* %obj, i64 32)
  %src = inttoptr i64 %from to i8*
  %dst = inttoptr i64 %to to i8*
  call void @sva.boundscheck(%sva.metapool* @MPI, i8* %src, i8* %dst)
  ret void
}
)");
  // MPI is declared without `complete`: the pool is incomplete.
  // Unregistered source and target -> nothing can be said -> pass.
  ExecResult r = h.interp->Run("unregistered_src", {0x900000, 0x900010});
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GT(h.pools->stats().reduced_checks, 0u);
}

TEST(IntrinsicsTest, RegisterSyscallIsBenignAtRuntime) {
  Harness h(R"(
module "regsc"
define i64 @handler(i64 %x) {
entry:
  ret i64 %x
}
define i64 @boot() {
entry:
  %h = bitcast i64 (i64)* @handler to i8*
  call void @sva.register.syscall(i64 9, i8* %h)
  ret i64 0
}
)");
  EXPECT_TRUE(h.interp->Run("boot", {}).status.ok());
}

TEST(IntrinsicsTest, PseudoAllocIsANoOpAfterCompilation) {
  Harness h(R"(
module "pseudo"
define i64 @scan() {
entry:
  call void @sva.pseudo.alloc(i64 917504, i64 1048575)
  ret i64 7
}
)");
  ExecResult r = h.interp->Run("scan", {});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.value, 7u);
}

TEST(IntrinsicsTest, CheckStatsAttributePerKind) {
  Harness h(R"(
module "stats"
metapool MPC complete
declare i8* @kmalloc(i64)

define void @mix() {
entry:
  %obj = call i8* @kmalloc(i64 16)
  call void @pchk.reg.obj(%sva.metapool* @MPC, i8* %obj, i64 16)
  %p = getelementptr i8* %obj, i64 8
  call void @sva.boundscheck(%sva.metapool* @MPC, i8* %obj, i8* %p)
  call void @sva.lscheck(%sva.metapool* @MPC, i8* %p)
  call void @pchk.drop.obj(%sva.metapool* @MPC, i8* %obj)
  ret void
}
)");
  ASSERT_TRUE(h.interp->Run("mix", {}).status.ok());
  const runtime::CheckStats& stats = h.pools->stats();
  EXPECT_EQ(stats.registrations, 1u);
  EXPECT_EQ(stats.drops, 1u);
  EXPECT_EQ(stats.bounds_performed, 1u);
  EXPECT_EQ(stats.loadstore_performed, 1u);
  EXPECT_EQ(stats.total_failed(), 0u);
}

TEST(IntrinsicsTest, BadMetapoolHandleIsAnError) {
  Harness h(R"(
module "badhandle"
declare i8* @kmalloc(i64)
define void @f() {
entry:
  %obj = call i8* @kmalloc(i64 16)
  %fake = bitcast i8* %obj to %sva.metapool*
  call void @pchk.reg.obj(%sva.metapool* %fake, i8* %obj, i64 16)
  ret void
}
)");
  ExecResult r = h.interp->Run("f", {});
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sva::svm
