#include <gtest/gtest.h>

#include "src/vir/builder.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"
#include "src/vir/module.h"
#include "src/vir/printer.h"

namespace sva::vir {
namespace {

// Builds: i32 @sum(i32 %n) { loop summing 0..n-1 }.
Function* BuildSumFunction(Module& m) {
  TypeContext& t = m.types();
  const FunctionType* ft = t.FunctionTy(t.I32(), {t.I32()});
  Function* fn = m.CreateFunction("sum", ft, false, {"n"});
  BasicBlock* entry = fn->CreateBlock("entry");
  BasicBlock* loop = fn->CreateBlock("loop");
  BasicBlock* exit = fn->CreateBlock("exit");
  IRBuilder b(m);
  b.SetInsertPoint(entry);
  b.CreateBr(loop);
  b.SetInsertPoint(loop);
  PhiInst* i = b.CreatePhi(t.I32(), "i");
  PhiInst* acc = b.CreatePhi(t.I32(), "acc");
  Value* acc2 = b.CreateAdd(acc, i, "acc2");
  Value* i2 = b.CreateAdd(i, m.GetInt32(1), "i2");
  Value* done = b.CreateICmp(CmpPred::kSGe, i2, fn->arg(0), "done");
  b.CreateCondBr(done, exit, loop);
  i->AddIncoming(m.GetInt32(0), entry);
  i->AddIncoming(i2, loop);
  acc->AddIncoming(m.GetInt32(0), entry);
  acc->AddIncoming(acc2, loop);
  b.SetInsertPoint(exit);
  b.CreateRet(acc2);
  return fn;
}

TEST(IRTest, FunctionStructure) {
  Module m("test");
  Function* fn = BuildSumFunction(m);
  EXPECT_EQ(fn->num_args(), 1u);
  EXPECT_EQ(fn->blocks().size(), 3u);
  EXPECT_EQ(m.GetFunction("sum"), fn);
  EXPECT_FALSE(fn->is_declaration());
  BasicBlock* loop = fn->blocks()[1].get();
  EXPECT_NE(loop->terminator(), nullptr);
  auto succs = loop->Successors();
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_EQ(succs[1], loop);
}

TEST(IRTest, ConstantsAreInterned) {
  Module m("test");
  EXPECT_EQ(m.GetInt32(7), m.GetInt32(7));
  EXPECT_NE(m.GetInt32(7), m.GetInt64(7));
  const PointerType* i8p = m.types().PointerTo(m.types().I8());
  EXPECT_EQ(m.GetNull(i8p), m.GetNull(i8p));
  // Same bit pattern masked by width interns equally.
  EXPECT_EQ(m.GetInt(m.types().I8(), 0x1FF), m.GetInt(m.types().I8(), 0xFF));
}

TEST(IRTest, ConstantIntSignExtension) {
  Module m("test");
  ConstantInt* minus_one = m.GetInt(m.types().I8(), 0xFF);
  EXPECT_EQ(minus_one->sext_value(), -1);
  EXPECT_EQ(minus_one->zext_value(), 0xFFu);
  ConstantInt* big = m.GetInt(m.types().I32(), 0x80000000u);
  EXPECT_EQ(big->sext_value(), -2147483648LL);
}

TEST(IRTest, ReplaceAllUsesWith) {
  Module m("test");
  Function* fn = BuildSumFunction(m);
  // Replace the argument with a constant everywhere.
  Value* c = m.GetInt32(10);
  fn->ReplaceAllUsesWith(fn->arg(0), c);
  for (Instruction* inst : fn->AllInstructions()) {
    for (const Value* op : inst->operands()) {
      EXPECT_NE(op, fn->arg(0));
    }
  }
}

TEST(IRTest, InsertAtPlacesChecksBeforeGuardedOp) {
  Module m("test");
  TypeContext& t = m.types();
  Function* fn =
      m.CreateFunction("f", t.FunctionTy(t.VoidTy(), {t.PointerTo(t.I32())}),
                       false, {"p"});
  BasicBlock* bb = fn->CreateBlock("entry");
  IRBuilder b(m);
  b.SetInsertPoint(bb);
  Value* loaded = b.CreateLoad(fn->arg(0), "x");
  (void)loaded;
  b.CreateRetVoid();
  // Insert a check before the load (index 0), as the verifier pass does.
  Function* lscheck = DeclareIntrinsic(m, Intrinsic::kLSCheck);
  b.SetInsertPoint(bb, 0);
  GlobalVariable* mp = MetapoolHandle(m, "MP0");
  Value* cast = b.CreateBitcast(fn->arg(0), t.PointerTo(t.I8()));
  b.CreateCall(lscheck, {mp, cast});
  EXPECT_EQ(bb->instructions().size(), 4u);
  EXPECT_EQ(bb->instructions()[0]->opcode(), Opcode::kBitcast);
  EXPECT_EQ(bb->instructions()[1]->opcode(), Opcode::kCall);
  EXPECT_EQ(bb->instructions()[2]->opcode(), Opcode::kLoad);
}

TEST(IRTest, IntrinsicDeclarations) {
  Module m("test");
  Function* reg = DeclareIntrinsic(m, Intrinsic::kPchkRegObj);
  ASSERT_NE(reg, nullptr);
  EXPECT_TRUE(reg->is_declaration());
  EXPECT_EQ(reg->name(), "pchk.reg.obj");
  EXPECT_EQ(reg->function_type()->params().size(), 3u);
  // Idempotent.
  EXPECT_EQ(DeclareIntrinsic(m, Intrinsic::kPchkRegObj), reg);
  EXPECT_EQ(LookupIntrinsic("pchk.reg.obj"), Intrinsic::kPchkRegObj);
  EXPECT_EQ(LookupIntrinsic("sva.lscheck"), Intrinsic::kLSCheck);
  EXPECT_EQ(LookupIntrinsic("printf"), Intrinsic::kNone);
}

TEST(IRTest, MetapoolHandlesAreTypedGlobals) {
  Module m("test");
  GlobalVariable* mp1 = MetapoolHandle(m, "MP1");
  EXPECT_TRUE(IsMetapoolHandle(mp1));
  EXPECT_EQ(MetapoolHandle(m, "MP1"), mp1);
  GlobalVariable* plain = m.CreateGlobal("counter", m.types().I64());
  EXPECT_FALSE(IsMetapoolHandle(plain));
}

TEST(IRTest, MetapoolAnnotations) {
  Module m("test");
  MetapoolDecl& decl = m.DeclareMetapool("MP1");
  decl.type_homogeneous = true;
  decl.element_type = m.types().I32();
  GlobalVariable* g = m.CreateGlobal("g", m.types().I32());
  m.AnnotateValue(g, "MP1");
  EXPECT_EQ(m.MetapoolOf(g), "MP1");
  EXPECT_NE(m.FindMetapool("MP1"), nullptr);
  EXPECT_EQ(m.FindMetapool("MP9"), nullptr);
  EXPECT_TRUE(m.MetapoolOf(m.GetInt32(0)).empty());
}

TEST(IRTest, PrinterProducesDefinition) {
  Module m("test");
  BuildSumFunction(m);
  std::string text = PrintModule(m);
  EXPECT_NE(text.find("define i32 @sum(i32 %n)"), std::string::npos);
  EXPECT_NE(text.find("phi i32"), std::string::npos);
  EXPECT_NE(text.find("icmp sge i32"), std::string::npos);
  EXPECT_NE(text.find("br i1"), std::string::npos);
}

TEST(IRTest, GepIndexedTypeStructWalk) {
  Module m("test");
  TypeContext& t = m.types();
  StructType* task = t.NamedStruct(
      "task", {t.I32(), t.ArrayOf(t.I8(), 16), t.PointerTo(t.I64())});
  std::vector<Value*> idx = {m.GetInt64(0), m.GetInt32(1), m.GetInt64(3)};
  auto r = GepIndexedType(task, idx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), t.I8());
  // Out-of-range struct field is rejected.
  std::vector<Value*> bad = {m.GetInt64(0), m.GetInt32(9)};
  EXPECT_FALSE(GepIndexedType(task, bad).ok());
  // Non-constant struct index is rejected.
  Function* fn =
      m.CreateFunction("f", t.FunctionTy(t.VoidTy(), {t.I32()}), false);
  std::vector<Value*> nonconst = {m.GetInt64(0), fn->arg(0)};
  EXPECT_FALSE(GepIndexedType(task, nonconst).ok());
}

}  // namespace
}  // namespace sva::vir
