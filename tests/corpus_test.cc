#include <gtest/gtest.h>

#include "src/corpus/corpus.h"
#include "src/safety/compiler.h"
#include "src/verifier/typechecker.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::corpus {
namespace {

TEST(CorpusTest, BothVariantsParseAndVerify) {
  for (bool libs : {false, true}) {
    auto m = vir::ParseModule(KernelCorpusText(libs));
    ASSERT_TRUE(m.ok()) << "libs=" << libs << ": " << m.status().ToString();
    Status v = vir::VerifyModule(**m);
    EXPECT_TRUE(v.ok()) << "libs=" << libs << ": " << v.ToString();
  }
}

TEST(CorpusTest, SafetyCompilerHandlesBothVariants) {
  for (bool entire : {false, true}) {
    auto m = vir::ParseModule(KernelCorpusText(entire));
    ASSERT_TRUE(m.ok());
    safety::SafetyCompilerOptions options;
    options.analysis = CorpusConfig(entire);
    auto report = safety::RunSafetyCompiler(**m, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->metapools, 3u);
    EXPECT_GT(report->reg_obj, 3u);
    EXPECT_GT(report->loads.total, 10u);
    Status v = vir::VerifyModule(**m);
    EXPECT_TRUE(v.ok()) << v.ToString();
    verifier::TypeCheckResult tc = verifier::TypeCheckModule(**m);
    EXPECT_TRUE(tc.ok) << (tc.errors.empty() ? "" : tc.errors[0]);
  }
}

TEST(CorpusTest, AsTestedHasIncompleteAccessesEntireKernelHasNone) {
  // The Table 9 contrast: excluding the library leaves most pointer
  // accesses on incomplete partitions; compiling the whole kernel removes
  // every source of incompleteness.
  safety::SafetyReport as_tested;
  safety::SafetyReport entire;
  {
    auto m = vir::ParseModule(KernelCorpusText(false));
    ASSERT_TRUE(m.ok());
    safety::SafetyCompilerOptions options;
    options.analysis = CorpusConfig(false);
    as_tested = *safety::RunSafetyCompiler(**m, options);
  }
  {
    auto m = vir::ParseModule(KernelCorpusText(true));
    ASSERT_TRUE(m.ok());
    safety::SafetyCompilerOptions options;
    options.analysis = CorpusConfig(true);
    entire = *safety::RunSafetyCompiler(**m, options);
  }
  EXPECT_GT(as_tested.loads.to_incomplete, 0u);
  EXPECT_EQ(entire.loads.to_incomplete, 0u);
  EXPECT_EQ(entire.stores.to_incomplete, 0u);
  EXPECT_EQ(entire.array_indexing.to_incomplete, 0u);
  // Some accesses are type-safe in both configurations.
  EXPECT_GT(entire.loads.to_type_safe, 0u);
  // The library's allocation site is only seen in the entire-kernel build.
  EXPECT_LT(as_tested.allocation_sites, entire.allocation_sites);
  EXPECT_EQ(static_cast<int>(entire.allocation_sites),
            TotalAllocationSites());
}

TEST(CorpusTest, SyscallRegistrationsDiscovered) {
  auto m = vir::ParseModule(KernelCorpusText(true));
  ASSERT_TRUE(m.ok());
  analysis::PointsToAnalysis pta(**m, CorpusConfig(true));
  ASSERT_TRUE(pta.Run().ok());
  EXPECT_EQ(pta.syscall_table().size(), 2u);
  EXPECT_EQ(pta.syscall_table().at(3)->name(), "sys_read_impl");
  EXPECT_EQ(pta.syscall_table().at(4)->name(), "sys_write_impl");
}

TEST(CorpusTest, IndirectFileOpsResolvedWithSignatureAssertion) {
  auto m = vir::ParseModule(KernelCorpusText(true));
  ASSERT_TRUE(m.ok());
  analysis::PointsToAnalysis pta(**m, CorpusConfig(true));
  ASSERT_TRUE(pta.Run().ok());
  analysis::CallGraph cg(pta);
  ASSERT_GE(cg.indirect_sites().size(), 1u);
  bool found_file_dispatch = false;
  for (const vir::CallInst* site : cg.indirect_sites()) {
    const auto& callees = cg.Callees(site);
    for (const vir::Function* f : callees) {
      if (f->name() == "op_seek" || f->name() == "op_size") {
        found_file_dispatch = true;
      }
      // The signature assertion keeps only matching signatures.
      EXPECT_EQ(f->function_type()->params().size(), 2u);
    }
  }
  EXPECT_TRUE(found_file_dispatch);
}

}  // namespace
}  // namespace sva::corpus
