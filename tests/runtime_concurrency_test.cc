// Concurrency tests for the sharded metapool runtime: N worker threads
// issuing mixed register/drop/bounds-check/load-store-check traffic against
// shared metapools. Run under the tsan preset (ctest -L concurrency) these
// must be data-race free; under any build they must be deterministic where
// the workload is (disjoint per-thread address regions).
#include <atomic>
#include <cstdint>
#include <functional>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/metapool_runtime.h"
#include "src/smp/percpu.h"

namespace sva::runtime {
namespace {

constexpr unsigned kThreads = 8;

// Disjoint per-thread address regions, far enough apart that even the
// largest object a worker registers cannot reach a neighbour's region.
uint64_t RegionBase(unsigned thread) {
  return 0x200000000ull + (static_cast<uint64_t>(thread) << 28);
}

void RunOnThreads(unsigned threads, const std::function<void(unsigned)>& fn) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([t, &fn] {
      smp::ScopedCpu bind(t);
      fn(t);
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
}

TEST(RuntimeConcurrencyTest, ConcurrentChecksOnStableObjects) {
  MetaPoolRuntime rt;
  MetaPool* pool = rt.CreatePool("stable", true, 64, /*complete=*/true);
  constexpr uint64_t kObjects = 32;
  for (unsigned t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kObjects; ++i) {
      ASSERT_TRUE(
          rt.RegisterObject(*pool, RegionBase(t) + i * 0x1000, 64).ok());
    }
  }
  rt.ResetStats();

  constexpr uint64_t kIters = 5000;
  RunOnThreads(kThreads, [&](unsigned t) {
    for (uint64_t i = 0; i < kIters; ++i) {
      uint64_t base = RegionBase(t) + (i % kObjects) * 0x1000;
      EXPECT_TRUE(rt.LoadStoreCheck(*pool, base + (i % 64)).ok());
      EXPECT_TRUE(rt.BoundsCheck(*pool, base, base + 63).ok());
    }
  });

  EXPECT_TRUE(rt.violations().empty());
  // Per-CPU counter shards must not lose increments.
  EXPECT_EQ(rt.stats().total_performed(), kThreads * kIters * 2);
  EXPECT_EQ(rt.stats().total_failed(), 0u);
}

TEST(RuntimeConcurrencyTest, MixedRegisterDropCheckStress) {
  MetaPoolRuntime rt;
  // Two shared pools, including spanning objects that straddle every
  // stripe, so concurrent multi-stripe inserts/removes and single-stripe
  // lookups interleave.
  MetaPool* a = rt.CreatePool("stress_a", true, 64, /*complete=*/true);
  MetaPool* b = rt.CreatePool("stress_b", false, 0, /*complete=*/true);

  std::atomic<uint64_t> local_failures{0};
  constexpr uint64_t kIters = 4000;
  RunOnThreads(kThreads, [&](unsigned t) {
    std::mt19937_64 rng(t * 7919 + 1);
    uint64_t region = RegionBase(t);
    uint64_t expected_failures = 0;
    for (uint64_t i = 0; i < kIters; ++i) {
      MetaPool* pool = (rng() & 1) ? a : b;
      uint64_t slot = rng() % 16;
      uint64_t start = region + slot * 0x100000;
      // Sizes up to 128 KiB: 32 address windows, i.e. objects that live in
      // every stripe of the pool.
      uint64_t size = 64 + (rng() % 0x20000);
      switch (rng() % 4) {
        case 0:
          (void)rt.RegisterObject(*pool, start, size);
          break;
        case 1:
          // A failed drop (no live object at start) counts as a failed
          // check in the stats, like a bad free.
          if (!rt.DropObject(*pool, start).ok()) {
            ++expected_failures;
          }
          break;
        case 2: {
          // In-region probe; sound either way, must never crash or race.
          Status s = rt.LoadStoreCheck(*pool, start + (rng() % size));
          if (!s.ok()) {
            ++expected_failures;
          }
          break;
        }
        default: {
          Status s = rt.BoundsCheck(*pool, start, start + (rng() % size));
          if (!s.ok()) {
            ++expected_failures;
          }
          break;
        }
      }
    }
    local_failures.fetch_add(expected_failures, std::memory_order_relaxed);
  });

  // Every check failure a worker observed is in the shared violation log
  // (registration violations are logged too, so >= rather than ==).
  EXPECT_GE(rt.violations().size(), local_failures.load());
  EXPECT_EQ(rt.stats().total_failed(), local_failures.load());
}

// The model check: per-thread operation sequences over disjoint address
// regions are generated from fixed seeds, executed concurrently on one
// shared pool, then replayed serially on a fresh pool. Disjointness means
// interleaving cannot change any op's outcome, so the concurrent run must
// match the serialized replay op for op.
struct Op {
  enum Kind { kRegister, kDrop, kLsCheck, kBoundsCheck } kind;
  uint64_t start = 0;
  uint64_t size = 0;
  uint64_t addr = 0;
};

std::vector<Op> MakeOps(unsigned thread, uint64_t count) {
  std::mt19937_64 rng(thread * 104729 + 17);
  std::vector<Op> ops;
  ops.reserve(count);
  uint64_t region = RegionBase(thread);
  for (uint64_t i = 0; i < count; ++i) {
    Op op;
    op.kind = static_cast<Op::Kind>(rng() % 4);
    op.start = region + (rng() % 16) * 0x100000;
    op.size = 32 + (rng() % 0x20000);
    op.addr = op.start + (rng() % op.size);
    ops.push_back(op);
  }
  return ops;
}

std::vector<bool> ApplyOps(MetaPoolRuntime& rt, MetaPool& pool,
                           const std::vector<Op>& ops) {
  std::vector<bool> outcomes;
  outcomes.reserve(ops.size());
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kRegister:
        outcomes.push_back(rt.RegisterObject(pool, op.start, op.size).ok());
        break;
      case Op::kDrop:
        outcomes.push_back(rt.DropObject(pool, op.start).ok());
        break;
      case Op::kLsCheck:
        outcomes.push_back(rt.LoadStoreCheck(pool, op.addr).ok());
        break;
      case Op::kBoundsCheck:
        outcomes.push_back(rt.BoundsCheck(pool, op.start, op.addr).ok());
        break;
    }
  }
  return outcomes;
}

TEST(RuntimeConcurrencyTest, ConcurrentMatchesSerializedReplay) {
  constexpr uint64_t kOpsPerThread = 3000;
  std::vector<std::vector<Op>> sequences;
  for (unsigned t = 0; t < kThreads; ++t) {
    sequences.push_back(MakeOps(t, kOpsPerThread));
  }

  MetaPoolRuntime concurrent_rt;
  MetaPool* concurrent_pool =
      concurrent_rt.CreatePool("model", true, 64, /*complete=*/true);
  std::vector<std::vector<bool>> concurrent(kThreads);
  RunOnThreads(kThreads, [&](unsigned t) {
    concurrent[t] = ApplyOps(concurrent_rt, *concurrent_pool, sequences[t]);
  });

  MetaPoolRuntime serial_rt;
  MetaPool* serial_pool =
      serial_rt.CreatePool("model", true, 64, /*complete=*/true);
  for (unsigned t = 0; t < kThreads; ++t) {
    std::vector<bool> replay =
        ApplyOps(serial_rt, *serial_pool, sequences[t]);
    ASSERT_EQ(concurrent[t].size(), replay.size());
    for (size_t i = 0; i < replay.size(); ++i) {
      ASSERT_EQ(concurrent[t][i], replay[i])
          << "thread " << t << " op " << i << " kind "
          << static_cast<int>(sequences[t][i].kind)
          << " diverged between concurrent and serialized execution";
    }
  }
  // Same traffic, same end state: live object counts agree.
  EXPECT_EQ(concurrent_pool->live_objects(), serial_pool->live_objects());
}

TEST(RuntimeConcurrencyTest, CacheToggleDuringTraffic) {
  MetaPoolRuntime rt;
  MetaPool* pool = rt.CreatePool("toggle", true, 64, /*complete=*/true);
  for (unsigned t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(rt.RegisterObject(*pool, RegionBase(t), 4096).ok());
  }
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 200; ++i) {
      pool->set_cache_enabled(i & 1);
      std::this_thread::yield();
    }
    stop.store(true);
  });
  RunOnThreads(kThreads, [&](unsigned t) {
    uint64_t base = RegionBase(t);
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE(rt.LoadStoreCheck(*pool, base + 128).ok());
      EXPECT_TRUE(rt.BoundsCheck(*pool, base, base + 4095).ok());
    }
  });
  toggler.join();
  EXPECT_TRUE(rt.violations().empty());
}

}  // namespace
}  // namespace sva::runtime
