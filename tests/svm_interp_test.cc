#include <gtest/gtest.h>

#include "src/support/strings.h"
#include "src/runtime/metapool_runtime.h"
#include "src/svm/interp.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::svm {
namespace {

// Parses, verifies, and prepares a module for execution.
struct Harness {
  explicit Harness(const char* text,
                   runtime::EnforcementMode mode = runtime::EnforcementMode::kTrap,
                   InterpOptions options = {}) {
    auto parsed = vir::ParseModule(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    module = std::move(parsed).value();
    Status verified = vir::VerifyModule(*module);
    EXPECT_TRUE(verified.ok()) << verified.ToString();
    pools = std::make_unique<runtime::MetaPoolRuntime>(mode);
    interp = std::make_unique<Interpreter>(*module, *pools, options);
    Status init = interp->Initialize();
    EXPECT_TRUE(init.ok()) << init.ToString();
  }

  std::unique_ptr<vir::Module> module;
  std::unique_ptr<runtime::MetaPoolRuntime> pools;
  std::unique_ptr<Interpreter> interp;
};

TEST(InterpTest, ArithmeticLoop) {
  Harness h(R"(
module "sum"
define i32 @sum(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %loop ]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %done = icmp sge i32 %i2, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i32 %acc2
}
)");
  ExecResult r = h.interp->Run("sum", {100});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 4950u);
  EXPECT_GT(r.steps, 100u);
}

TEST(InterpTest, SignedArithmeticAndWidths) {
  Harness h(R"(
module "signed"
define i32 @f(i32 %a, i32 %b) {
entry:
  %d = sdiv i32 %a, %b
  %r = srem i32 %a, %b
  %s = add i32 %d, %r
  ret i32 %s
}
define i8 @narrow(i8 %x) {
entry:
  %y = add i8 %x, 1
  ret i8 %y
}
define i64 @extend(i8 %x) {
entry:
  %s = sext i8 %x to i64
  ret i64 %s
}
)");
  // -7 / 2 = -3 (trunc toward zero), -7 % 2 = -1; sum = -4.
  ExecResult r = h.interp->Run("f", {static_cast<uint64_t>(-7) & 0xFFFFFFFF, 2});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(static_cast<int32_t>(r.value), -4);
  // i8 wraps.
  r = h.interp->Run("narrow", {0xFF});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.value, 0u);
  // sext i8 -1 -> i64 -1.
  r = h.interp->Run("extend", {0x80});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(static_cast<int64_t>(r.value), -128);
}

TEST(InterpTest, DivisionByZeroTraps) {
  Harness h(R"(
module "div0"
define i32 @f(i32 %a, i32 %b) {
entry:
  %d = udiv i32 %a, %b
  ret i32 %d
}
)");
  ExecResult r = h.interp->Run("f", {10, 0});
  EXPECT_EQ(r.status.code(), StatusCode::kSafetyViolation);
}

TEST(InterpTest, GlobalsLoadsStoresGeps) {
  Harness h(R"(
module "mem"
%pair = type { i32, i64 }

global @counter : i64 = 5
global @pairs : [4 x %pair]

define i64 @bump(i64 %by) {
entry:
  %v = load i64, i64* @counter
  %v2 = add i64 %v, %by
  store i64 %v2, i64* @counter
  ret i64 %v2
}
define i64 @use_pair(i64 %i, i64 %x) {
entry:
  %slot = getelementptr [4 x %pair]* @pairs, i64 0, i64 %i, i32 1
  store i64 %x, i64* %slot
  %back = load i64, i64* %slot
  ret i64 %back
}
)");
  ExecResult r = h.interp->Run("bump", {3});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 8u);
  r = h.interp->Run("bump", {1});
  EXPECT_EQ(r.value, 9u);  // Global state persists across calls.
  r = h.interp->Run("use_pair", {2, 777});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 777u);
}

TEST(InterpTest, NullDereferenceFaults) {
  Harness h(R"(
module "null"
define i32 @f(i32* %p) {
entry:
  %v = load i32, i32* %p
  ret i32 %v
}
)");
  ExecResult r = h.interp->Run("f", {0});
  EXPECT_EQ(r.status.code(), StatusCode::kSafetyViolation);
  EXPECT_NE(r.status.message().find("null"), std::string::npos);
}

TEST(InterpTest, AllocaStackDiscipline) {
  Harness h(R"(
module "stack"
define i64 @leaf(i64 %x) {
entry:
  %buf = alloca i64, i64 8
  store i64 %x, i64* %buf
  %v = load i64, i64* %buf
  ret i64 %v
}
define i64 @caller() {
entry:
  %a = call i64 @leaf(i64 11)
  %b = call i64 @leaf(i64 31)
  %s = add i64 %a, %b
  ret i64 %s
}
)");
  ExecResult r = h.interp->Run("caller", {});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 42u);
}

TEST(InterpTest, MallocFreeViaOrdinaryAllocator) {
  Harness h(R"(
module "heap"
define i64 @roundtrip(i64 %x) {
entry:
  %p = malloc i64, i64 4
  %slot = getelementptr i64* %p, i64 3
  store i64 %x, i64* %slot
  %v = load i64, i64* %slot
  free i64* %p
  ret i64 %v
}
)");
  ExecResult r = h.interp->Run("roundtrip", {123});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 123u);
}

TEST(InterpTest, DoubleFreeTraps) {
  Harness h(R"(
module "df"
define void @f() {
entry:
  %p = malloc i64, i64 1
  free i64* %p
  free i64* %p
  ret void
}
)");
  ExecResult r = h.interp->Run("f", {});
  EXPECT_EQ(r.status.code(), StatusCode::kSafetyViolation);
}

TEST(InterpTest, HostFunctionBinding) {
  Harness h(R"(
module "host"
declare i64 @mystery(i64)
define i64 @f(i64 %x) {
entry:
  %r = call i64 @mystery(i64 %x)
  ret i64 %r
}
)");
  h.interp->BindHost("mystery",
                     [](Interpreter&, std::span<const uint64_t> args)
                         -> Result<uint64_t> { return args[0] * 3; });
  ExecResult r = h.interp->Run("f", {14});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.value, 42u);
  // Unbound externals fail cleanly.
  Harness h2(R"(
module "host2"
declare i64 @nope(i64)
define i64 @f() {
entry:
  %r = call i64 @nope(i64 1)
  ret i64 %r
}
)");
  EXPECT_EQ(h2.interp->Run("f", {}).status.code(),
            StatusCode::kUnimplemented);
}

TEST(InterpTest, KernelAllocatorsViaHostCalls) {
  Harness h(R"(
module "kalloc"
declare i8* @kmalloc(i64)
declare void @kfree(i8*)
declare i8* @kmem_cache_create(i64)
declare i8* @kmem_cache_alloc(i8*)
declare void @kmem_cache_free(i8*, i8*)

define i64 @heap_cycle() {
entry:
  %p = call i8* @kmalloc(i64 96)
  %q = bitcast i8* %p to i64*
  store i64 7, i64* %q
  %v = load i64, i64* %q
  call void @kfree(i8* %p)
  ret i64 %v
}
define i64 @cache_cycle() {
entry:
  %cache = call i8* @kmem_cache_create(i64 128)
  %o1 = call i8* @kmem_cache_alloc(i8* %cache)
  %o2 = call i8* @kmem_cache_alloc(i8* %cache)
  call void @kmem_cache_free(i8* %cache, i8* %o1)
  %o3 = call i8* @kmem_cache_alloc(i8* %cache)
  %same = icmp eq i8* %o1, %o3
  %r = zext i1 %same to i64
  call void @kmem_cache_free(i8* %cache, i8* %o2)
  call void @kmem_cache_free(i8* %cache, i8* %o3)
  ret i64 %r
}
)");
  ExecResult r = h.interp->Run("heap_cycle", {});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 7u);
  r = h.interp->Run("cache_cycle", {});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 1u) << "pool must reuse freed slots internally";
}

TEST(InterpTest, ChecksFireThroughIntrinsics) {
  Harness h(R"(
module "checked"
metapool MP1 complete

declare i8* @kmalloc(i64)

define i8 @overflow(i64 %idx) {
entry:
  %p = call i8* @kmalloc(i64 16)
  call void @pchk.reg.obj(%sva.metapool* @MP1, i8* %p, i64 16)
  %slot = getelementptr i8* %p, i64 %idx
  call void @sva.boundscheck(%sva.metapool* @MP1, i8* %p, i8* %slot)
  %v = load i8, i8* %slot
  ret i8 %v
}
)");
  ExecResult ok = h.interp->Run("overflow", {15});
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  ExecResult bad = h.interp->Run("overflow", {16});
  EXPECT_EQ(bad.status.code(), StatusCode::kSafetyViolation);
  EXPECT_EQ(h.pools->violations().size(), 1u);
  EXPECT_EQ(h.pools->violations()[0].kind, runtime::CheckKind::kBounds);
}

TEST(InterpTest, ChecksCanBeDisabled) {
  InterpOptions opts;
  opts.enforce_checks = false;
  Harness h(R"(
module "unchecked"
metapool MP1 complete
declare i8* @kmalloc(i64)
define i8 @overflow(i64 %idx) {
entry:
  %p = call i8* @kmalloc(i64 16)
  call void @pchk.reg.obj(%sva.metapool* @MP1, i8* %p, i64 16)
  %slot = getelementptr i8* %p, i64 %idx
  call void @sva.boundscheck(%sva.metapool* @MP1, i8* %p, i8* %slot)
  %v = load i8, i8* %slot
  ret i8 %v
}
)",
            runtime::EnforcementMode::kTrap, opts);
  // Overflow within the arena is not caught when checks are off (this is
  // the "native" configuration).
  ExecResult r = h.interp->Run("overflow", {16});
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(h.pools->violations().empty());
}

TEST(InterpTest, IndirectCallsAndTargetSets) {
  Harness h(R"(
module "indirect"
targetset 0 = @inc @dec

global @table : [2 x i64 (i64)*]

define i64 @inc(i64 %x) {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}
define i64 @dec(i64 %x) {
entry:
  %r = sub i64 %x, 1
  ret i64 %r
}
define i64 @evil(i64 %x) {
entry:
  ret i64 666
}
define void @setup() {
entry:
  %s0 = getelementptr [2 x i64 (i64)*]* @table, i64 0, i64 0
  store i64 (i64)* @inc, i64 (i64)** %s0
  %s1 = getelementptr [2 x i64 (i64)*]* @table, i64 0, i64 1
  store i64 (i64)* @dec, i64 (i64)** %s1
  ret void
}
define i64 @dispatch(i64 %which, i64 %x) {
entry:
  %slot = getelementptr [2 x i64 (i64)*]* @table, i64 0, i64 %which
  %fp = load i64 (i64)*, i64 (i64)** %slot
  %fpc = bitcast i64 (i64)* %fp to i8*
  call void @sva.indirectcheck(i8* %fpc, i64 0)
  %r = call i64 %fp(i64 %x)
  ret i64 %r
}
define i64 @hijack(i64 %x) {
entry:
  %s0 = getelementptr [2 x i64 (i64)*]* @table, i64 0, i64 0
  store i64 (i64)* @evil, i64 (i64)** %s0
  %r = call i64 @dispatch(i64 0, i64 %x)
  ret i64 %r
}
)");
  ASSERT_TRUE(h.interp->Run("setup", {}).status.ok());
  ExecResult r = h.interp->Run("dispatch", {0, 41});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 42u);
  r = h.interp->Run("dispatch", {1, 41});
  EXPECT_EQ(r.value, 40u);
  // Control-flow integrity: a function outside the computed callee set is
  // rejected even though it is a legitimate function elsewhere (T1).
  r = h.interp->Run("hijack", {41});
  EXPECT_EQ(r.status.code(), StatusCode::kSafetyViolation);
  EXPECT_EQ(h.pools->violations().back().kind,
            runtime::CheckKind::kIndirectCall);
}

TEST(InterpTest, UserspacePoolsRegisteredAtLoad) {
  Harness h(R"(
module "user"
metapool MPU user
define i64 @nop() {
entry:
  ret i64 0
}
)");
  runtime::MetaPool* pool = h.interp->PoolByName("MPU");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->live_objects(), 1u);  // The userspace object.
  EXPECT_TRUE(
      pool->Lookup(h.interp->memory().user_base() + 100).has_value());
}

TEST(InterpTest, StepBudgetStopsRunawayLoops) {
  InterpOptions opts;
  opts.max_steps = 10'000;
  Harness h(R"(
module "spin"
define void @spin() {
entry:
  br label %loop
loop:
  br label %loop
}
)",
            runtime::EnforcementMode::kTrap, opts);
  ExecResult r = h.interp->Run("spin", {});
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  EXPECT_NE(r.status.message().find("budget"), std::string::npos);
}

TEST(InterpTest, RecursionWorksAndDepthIsBounded) {
  Harness h(R"(
module "rec"
define i64 @fib(i64 %n) {
entry:
  %small = icmp sle i64 %n, 1
  br i1 %small, label %base, label %rec
base:
  ret i64 %n
rec:
  %n1 = sub i64 %n, 1
  %n2 = sub i64 %n, 2
  %a = call i64 @fib(i64 %n1)
  %b = call i64 @fib(i64 %n2)
  %s = add i64 %a, %b
  ret i64 %s
}
define void @forever() {
entry:
  call void @forever()
  ret void
}
)");
  ExecResult r = h.interp->Run("fib", {15});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.value, 610u);
  EXPECT_EQ(h.interp->Run("forever", {}).status.code(),
            StatusCode::kInternal);
}

TEST(InterpTest, FloatingPointPath) {
  Harness h(R"(
module "fp"
define f64 @mix(f64 %a, f64 %b, i64 %n) {
entry:
  %c = fadd f64 %a, %b
  %d = fmul f64 %c, 2.0
  %n_f = sitofp i64 %n to f64
  %e = fdiv f64 %d, %n_f
  ret f64 %e
}
define i64 @round(f64 %a) {
entry:
  %i = fptosi f64 %a to i64
  ret i64 %i
}
)");
  // Floats pass via the float argument path; int args fill the int slots.
  // mix(1.5, 2.5, 4) = (1.5+2.5)*2/4 = 2.0
  Interpreter& in = *h.interp;
  // Direct float args are not expressible through Run's integer interface;
  // exercise via a wrapper computed in bytecode instead.
  auto parsed = vir::ParseModule(R"(
module "fp2"
define i64 @go() {
entry:
  %x = fadd f64 1.5, 2.5
  %y = fmul f64 %x, 2.0
  %z = fdiv f64 %y, 4.0
  %i = fptosi f64 %z to i64
  ret i64 %i
}
)");
  ASSERT_TRUE(parsed.ok());
  runtime::MetaPoolRuntime pools2;
  Interpreter in2(**parsed, pools2);
  ASSERT_TRUE(in2.Initialize().ok());
  ExecResult r = in2.Run("go", {});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 2u);
  (void)in;
}

TEST(InterpTest, CopyFromUserIsUncheckedLibraryCode) {
  // copy_from_user blindly copies: this models the external kernel library
  // that made SVA miss the ELF-loader exploit (Section 7.2).
  Harness h(R"(
module "cfu"
declare i8* @kmalloc(i64)
declare void @copy_from_user(i8*, i8*, i64)
define i64 @read_user(i64 %usrc, i64 %len) {
entry:
  %buf = call i8* @kmalloc(i64 64)
  %src = inttoptr i64 %usrc to i8*
  call void @copy_from_user(i8* %buf, i8* %src, i64 %len)
  %v = load i8, i8* %buf
  %r = zext i8 %v to i64
  ret i64 %r
}
)");
  uint64_t user = h.interp->memory().user_base();
  ASSERT_TRUE(h.interp->memory().Write(user, 1, 0x5A).ok());
  ExecResult r = h.interp->Run("read_user", {user, 8});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 0x5Au);
  // An overlong copy silently overruns the 64-byte buffer: no trap, because
  // the copy routine is outside the analyzed bytecode.
  r = h.interp->Run("read_user", {user, 4096});
  EXPECT_TRUE(r.status.ok());
}

// Parameterized sweep: shift semantics across widths.
class ShiftSweepTest
    : public ::testing::TestWithParam<std::tuple<unsigned, uint64_t>> {};

TEST_P(ShiftSweepTest, ShlMatchesReference) {
  auto [bits, amount] = GetParam();
  std::string text = sva::StrCat(
      "module \"shift\"\ndefine i", bits, " @f(i", bits, " %x, i", bits,
      " %s) {\nentry:\n  %r = shl i", bits, " %x, %s\n  ret i", bits,
      " %r\n}\n");
  Harness h(text.c_str());
  uint64_t x = 0x9E;
  ExecResult r = h.interp->Run("f", {x, amount});
  ASSERT_TRUE(r.status.ok());
  uint64_t expect =
      amount >= bits
          ? 0
          : (x << amount) &
                (bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1));
  EXPECT_EQ(r.value, expect) << "bits=" << bits << " amount=" << amount;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShiftSweepTest,
    ::testing::Combine(::testing::Values(8u, 16u, 32u, 64u),
                       ::testing::Values(0u, 1u, 7u, 8u, 31u, 63u, 64u)));

}  // namespace
}  // namespace sva::svm
