#include <gtest/gtest.h>

#include <cstring>
#include <cctype>

#include "src/kernel/kernel.h"
#include "src/smp/lock_order.h"
#include "src/trace/profiler.h"

namespace sva::kernel {
namespace {

// Boots a kernel in the given mode and exposes syscall shorthand.
class KernelHarness {
 public:
  explicit KernelHarness(KernelMode mode) : machine_(256ull << 20) {
    KernelConfig config;
    config.mode = mode;
    kernel_ = std::make_unique<Kernel>(machine_, config);
    Status s = kernel_->Boot();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  Kernel& k() { return *kernel_; }

  uint64_t user(uint64_t offset = 0) {
    return kUserVirtualBase +
           static_cast<uint64_t>(kernel_->current_pid()) * 0x100000 + offset;
  }

  // Syscall that must succeed at the transport level.
  uint64_t Call(Sys n, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0) {
    auto r = kernel_->Syscall(n, a0, a1, a2);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ~uint64_t{0};
  }

  hw::Machine machine_;
  std::unique_ptr<Kernel> kernel_;
};

class KernelModesTest : public ::testing::TestWithParam<KernelMode> {};

TEST_P(KernelModesTest, GetPidAndTimeOfDay) {
  KernelHarness h(GetParam());
  EXPECT_EQ(h.Call(Sys::kGetPid), 1u);
  h.machine_.timer().Tick(12345);
  ASSERT_EQ(h.Call(Sys::kGetTimeOfDay, h.user(0)), 0u);
  uint64_t tv[2] = {0, 0};
  ASSERT_TRUE(h.k().PeekUser(h.user(0), tv, 16).ok());
  EXPECT_EQ(tv[0], 1u);          // 1.2345 seconds.
  EXPECT_EQ(tv[1], 234500u);
}

TEST_P(KernelModesTest, FileWriteReadRoundTrip) {
  KernelHarness h(GetParam());
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/tmp/data").ok());
  uint64_t fd = h.Call(Sys::kOpen, h.user(0), 1);
  ASSERT_LT(fd, 16u);

  const char payload[] = "the quick brown fox jumps over the lazy dog";
  ASSERT_TRUE(h.k().PokeUser(h.user(256), payload, sizeof(payload)).ok());
  EXPECT_EQ(h.Call(Sys::kWrite, fd, h.user(256), sizeof(payload)),
            sizeof(payload));
  EXPECT_EQ(h.Call(Sys::kLseek, fd, 0, 0), 0u);
  EXPECT_EQ(h.Call(Sys::kRead, fd, h.user(512), sizeof(payload)),
            sizeof(payload));
  char back[sizeof(payload)] = {};
  ASSERT_TRUE(h.k().PeekUser(h.user(512), back, sizeof(payload)).ok());
  EXPECT_STREQ(back, payload);
  EXPECT_EQ(h.Call(Sys::kClose, fd), 0u);
}

TEST_P(KernelModesTest, LargeFileSpansBlocks) {
  KernelHarness h(GetParam());
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/tmp/big").ok());
  uint64_t fd = h.Call(Sys::kOpen, h.user(0), 1);
  std::vector<char> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>('a' + i % 26);
  }
  ASSERT_TRUE(h.k().PokeUser(h.user(64), data.data(), data.size()).ok());
  EXPECT_EQ(h.Call(Sys::kWrite, fd, h.user(64), data.size()), data.size());
  EXPECT_EQ(h.Call(Sys::kLseek, fd, 4000, 0), 4000u);
  EXPECT_EQ(h.Call(Sys::kRead, fd, h.user(64), 3000), 3000u);
  std::vector<char> back(3000);
  ASSERT_TRUE(h.k().PeekUser(h.user(64), back.data(), back.size()).ok());
  EXPECT_EQ(back[0], data[4000]);
  EXPECT_EQ(back[2999], data[6999]);
}

TEST_P(KernelModesTest, DevNullSemantics) {
  KernelHarness h(GetParam());
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/dev/null").ok());
  uint64_t fd = h.Call(Sys::kOpen, h.user(0), 0);
  ASSERT_LT(fd, 16u);
  EXPECT_EQ(h.Call(Sys::kWrite, fd, h.user(64), 100), 100u);
  EXPECT_EQ(h.Call(Sys::kRead, fd, h.user(64), 100), 0u);  // EOF.
  EXPECT_EQ(h.Call(Sys::kClose, fd), 0u);
}

TEST_P(KernelModesTest, PipeRoundTrip) {
  KernelHarness h(GetParam());
  ASSERT_EQ(h.Call(Sys::kPipe, h.user(0)), 0u);
  uint32_t fds[2];
  ASSERT_TRUE(h.k().PeekUser(h.user(0), fds, 8).ok());
  const char msg[] = "pipe payload";
  ASSERT_TRUE(h.k().PokeUser(h.user(64), msg, sizeof(msg)).ok());
  EXPECT_EQ(h.Call(Sys::kWrite, fds[1], h.user(64), sizeof(msg)),
            sizeof(msg));
  EXPECT_EQ(h.Call(Sys::kRead, fds[0], h.user(128), sizeof(msg)),
            sizeof(msg));
  char back[sizeof(msg)] = {};
  ASSERT_TRUE(h.k().PeekUser(h.user(128), back, sizeof(msg)).ok());
  EXPECT_STREQ(back, msg);
  // Wrong ends fail.
  auto bad_read = h.k().Syscall(Sys::kRead, fds[1], h.user(128), 4);
  ASSERT_TRUE(bad_read.ok());
  EXPECT_GT(*bad_read, uint64_t{1} << 60);  // -EINVAL.
}

TEST_P(KernelModesTest, PipeWrapsAroundRing) {
  KernelHarness h(GetParam());
  ASSERT_EQ(h.Call(Sys::kPipe, h.user(0)), 0u);
  uint32_t fds[2];
  ASSERT_TRUE(h.k().PeekUser(h.user(0), fds, 8).ok());
  std::vector<char> chunk(6000, 'x');
  ASSERT_TRUE(h.k().PokeUser(h.user(64), chunk.data(), chunk.size()).ok());
  // Fill and drain repeatedly to force wraparound.
  for (int round = 0; round < 6; ++round) {
    ASSERT_EQ(h.Call(Sys::kWrite, fds[1], h.user(64), chunk.size()),
              chunk.size());
    ASSERT_EQ(h.Call(Sys::kRead, fds[0], h.user(8192), chunk.size()),
              chunk.size());
  }
}

TEST_P(KernelModesTest, ForkExecWaitLifecycle) {
  KernelHarness h(GetParam());
  uint64_t child = h.Call(Sys::kFork);
  EXPECT_EQ(child, 2u);
  // The child exists and inherited the parent's pid-1 fds (none).
  ASSERT_NE(h.k().FindTask(2), nullptr);
  // Parent stays current (our fork returns to the parent).
  EXPECT_EQ(h.Call(Sys::kGetPid), 1u);
  EXPECT_EQ(h.k().stats().forks, 1u);
  // "Run" the child: switch, exec, exit.
  ASSERT_TRUE(h.k().Yield().ok());
  EXPECT_EQ(h.Call(Sys::kGetPid), 2u);
  EXPECT_EQ(h.Call(Sys::kExecve, h.user(0)), 0u);
  EXPECT_EQ(h.k().stats().execs, 1u);
  EXPECT_EQ(h.Call(Sys::kExit, 0), 0u);
  // Back in the parent; reap the child.
  EXPECT_EQ(h.Call(Sys::kGetPid), 1u);
  EXPECT_EQ(h.Call(Sys::kWaitPid, 2), 2u);
  EXPECT_EQ(h.k().FindTask(2), nullptr);
}

TEST_P(KernelModesTest, ForkCopiesUserMemory) {
  KernelHarness h(GetParam());
  const char secret[] = "parent data";
  ASSERT_TRUE(h.k().PokeUser(h.user(100), secret, sizeof(secret)).ok());
  ASSERT_EQ(h.Call(Sys::kFork), 2u);
  ASSERT_TRUE(h.k().Yield().ok());
  ASSERT_EQ(h.k().current_pid(), 2);
  char back[sizeof(secret)] = {};
  ASSERT_TRUE(h.k().PeekUser(h.user(100), back, sizeof(secret)).ok());
  EXPECT_STREQ(back, secret);
}

TEST_P(KernelModesTest, SignalDeliveryOnSyscallReturn) {
  KernelHarness h(GetParam());
  EXPECT_EQ(h.Call(Sys::kSigaction, 10, /*handler=*/77), 0u);
  EXPECT_EQ(h.Call(Sys::kKill, 1, 10), 0u);
  // The signal was delivered on the way out of a kernel entry.
  Task* init = h.k().FindTask(1);
  ASSERT_NE(init, nullptr);
  EXPECT_EQ(init->signals_delivered, 1u);
  EXPECT_EQ(init->pending_signals, 0u);
  // Unhandled signals are dropped (default action).
  EXPECT_EQ(h.Call(Sys::kKill, 1, 11), 0u);
  EXPECT_EQ(h.Call(Sys::kGetPid), 1u);
  EXPECT_EQ(init->signals_delivered, 1u);
}

TEST_P(KernelModesTest, SocketsSendRecv) {
  KernelHarness h(GetParam());
  uint64_t fd = h.Call(Sys::kSocket);
  ASSERT_LT(fd, 16u);
  const char msg[] = "GET / HTTP/1.0";
  ASSERT_TRUE(h.k().PokeUser(h.user(64), msg, sizeof(msg)).ok());
  EXPECT_EQ(h.Call(Sys::kSend, fd, h.user(64), sizeof(msg)), sizeof(msg));
  EXPECT_EQ(h.Call(Sys::kRecv, fd, h.user(256), sizeof(msg)), sizeof(msg));
  char back[sizeof(msg)] = {};
  ASSERT_TRUE(h.k().PeekUser(h.user(256), back, sizeof(msg)).ok());
  EXPECT_STREQ(back, msg);
  // Empty queue recv returns 0.
  EXPECT_EQ(h.Call(Sys::kRecv, fd, h.user(256), 16), 0u);
}

TEST_P(KernelModesTest, SbrkMovesBreak) {
  KernelHarness h(GetParam());
  uint64_t brk0 = h.Call(Sys::kBrk, 0);
  uint64_t brk1 = h.Call(Sys::kBrk, 4096);
  EXPECT_EQ(brk1, brk0 + 4096);
}

TEST_P(KernelModesTest, UnlinkReleasesStorage) {
  KernelHarness h(GetParam());
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/tmp/gone").ok());
  uint64_t fd = h.Call(Sys::kOpen, h.user(0), 1);
  std::vector<char> data(8192, 'z');
  ASSERT_TRUE(h.k().PokeUser(h.user(64), data.data(), data.size()).ok());
  ASSERT_EQ(h.Call(Sys::kWrite, fd, h.user(64), data.size()), data.size());
  ASSERT_EQ(h.Call(Sys::kClose, fd), 0u);
  EXPECT_EQ(h.Call(Sys::kUnlink, h.user(0)), 0u);
  // Reopening without O_CREAT fails.
  auto r = h.k().Syscall(Sys::kOpen, h.user(0), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(*r, uint64_t{1} << 60);  // -ENOENT.
}

TEST_P(KernelModesTest, DupSharesOffset) {
  KernelHarness h(GetParam());
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/tmp/dup").ok());
  uint64_t fd = h.Call(Sys::kOpen, h.user(0), 1);
  uint64_t fd2 = h.Call(Sys::kDup, fd);
  EXPECT_NE(fd, fd2);
  const char msg[] = "abcd";
  ASSERT_TRUE(h.k().PokeUser(h.user(64), msg, 4).ok());
  ASSERT_EQ(h.Call(Sys::kWrite, fd, h.user(64), 4), 4u);
  // The dup shares the offset: reading from fd2 starts at 4 (EOF).
  EXPECT_EQ(h.Call(Sys::kRead, fd2, h.user(128), 4), 0u);
}

TEST_P(KernelModesTest, BadFdsAreRejected) {
  KernelHarness h(GetParam());
  auto r = h.k().Syscall(Sys::kRead, 12, h.user(0), 4);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(*r, uint64_t{1} << 60);  // -EBADF.
  auto r2 = h.k().Syscall(Sys::kClose, 99, 0, 0);
  // fd out of range: safe mode traps it as a safety violation; other modes
  // return -EBADF.
  if (GetParam() == KernelMode::kSvaSafe) {
    EXPECT_TRUE(!r2.ok() || *r2 > (uint64_t{1} << 60));
  } else {
    ASSERT_TRUE(r2.ok());
    EXPECT_GT(*r2, uint64_t{1} << 60);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, KernelModesTest,
                         ::testing::Values(KernelMode::kNative,
                                           KernelMode::kSvaGcc,
                                           KernelMode::kSvaLlvm,
                                           KernelMode::kSvaSafe),
                         [](const auto& info) {
                           std::string name(KernelModeName(info.param));
                           std::string out;
                           for (char c : name.substr(6)) {  // Strip "Linux-".
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out.push_back(c);
                             }
                           }
                           return out;
                         });

// The perf_event-style session is strictly self-scoped: the owner may read
// its own samples, a forked child holding the inherited session fd gets
// kEPerm on both read and stop, and the owner's stop still succeeds after
// the child is gone (the exploit suite's PROF-SPY scenario end to end,
// minus the harness).
TEST(KernelProfTest, ProfSyscallsAreSelfOnly) {
  trace::Profiler::Get().ResetForTest();
  constexpr uint64_t kEPerm = static_cast<uint64_t>(-1);
  {
    KernelHarness h(KernelMode::kSvaSafe);
    const uint64_t fd = h.Call(Sys::kProfStart, 0);
    ASSERT_LT(fd, 1024u);
    EXPECT_TRUE(trace::Profiler::Get().running());
    for (int i = 0; i < 50; ++i) {
      h.Call(Sys::kGetPid);  // Activity for the sampler to attribute.
    }
    // Reading our own session succeeds (whether or not a sample already
    // landed — the syscall itself must not error).
    auto n = h.k().Syscall(Sys::kProfRead, fd, h.user(0x8000), 16);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_LE(*n, 16u);

    const uint64_t child = h.Call(Sys::kFork);
    while (h.k().current_pid() != static_cast<int>(child)) {
      ASSERT_TRUE(h.k().Yield().ok());
    }
    EXPECT_EQ(h.Call(Sys::kProfRead, fd, h.user(0x8000), 16), kEPerm);
    EXPECT_EQ(h.Call(Sys::kProfStop, fd), kEPerm);
    h.Call(Sys::kExit, 0);
    ASSERT_EQ(h.Call(Sys::kWaitPid, child), child);

    EXPECT_EQ(h.Call(Sys::kProfStop, fd), 0u);
    EXPECT_FALSE(trace::Profiler::Get().running());
  }
  // Kernel teardown with the session already stopped must not double-stop.
  EXPECT_FALSE(trace::Profiler::Get().running());
}

// An explicit rate in kProfStart reprograms the timer; an impossible rate
// is refused in-band without opening a session.
TEST(KernelProfTest, ProfStartReprogramsTimerAndRejectsBadRates) {
  trace::Profiler::Get().ResetForTest();
  constexpr uint64_t kEInval = static_cast<uint64_t>(-22);
  KernelHarness h(KernelMode::kSvaSafe);
  EXPECT_EQ(h.k().machine().timer().frequency_hz(), 997u);  // Boot default.
  EXPECT_EQ(h.Call(Sys::kProfStart, 2000000), kEInval);  // Past the crystal.
  EXPECT_FALSE(trace::Profiler::Get().running());
  const uint64_t fd = h.Call(Sys::kProfStart, 1999);
  ASSERT_LT(fd, 1024u);
  EXPECT_EQ(h.k().machine().timer().frequency_hz(), 1999u);
  EXPECT_EQ(h.Call(Sys::kProfStop, fd), 0u);
}

TEST(KernelSafetyTest, UserRangeStraddleIsCaught) {
  KernelHarness h(KernelMode::kSvaSafe);
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/tmp/f").ok());
  uint64_t fd = h.Call(Sys::kOpen, h.user(0), 1);
  // A write whose user buffer runs off the end of the task's full growable
  // user region: the Section 4.6 userspace-object bounds check rejects it
  // (the registered object covers the whole max span, not just the brk
  // frontier, so lazy growth needs no re-registration).
  uint64_t region = h.k().config().max_user_pages_per_task * hw::kPageSize;
  auto r = h.k().Syscall(Sys::kWrite, fd, h.user(region - 8), 64);
  EXPECT_EQ(r.status().code(), StatusCode::kSafetyViolation);
  EXPECT_FALSE(h.k().pools().violations().empty());
  // Inside the registered object but beyond the brk frontier: the demand
  // pager refuses the fault instead (the page-fault-turned-kill path).
  uint64_t frontier = h.k().config().user_pages_per_task * hw::kPageSize;
  auto r2 = h.k().Syscall(Sys::kWrite, fd, h.user(frontier - 8), 64);
  EXPECT_EQ(r2.status().code(), StatusCode::kSafetyViolation);
}

TEST(KernelSafetyTest, SvaOsStatsTrackKernelEntries) {
  KernelHarness h(KernelMode::kSvaGcc);
  for (int i = 0; i < 10; ++i) {
    h.Call(Sys::kGetPid);
  }
  EXPECT_EQ(h.k().svaos().stats().syscalls_dispatched, 10u);
  EXPECT_EQ(h.k().svaos().stats().icontext_created, 10u);
  // Native mode uses no SVA-OS entries.
  KernelHarness native(KernelMode::kNative);
  for (int i = 0; i < 10; ++i) {
    native.Call(Sys::kGetPid);
  }
  EXPECT_EQ(native.k().svaos().stats().syscalls_dispatched, 0u);
}

TEST(KernelSafetyTest, SafeModeRegistersAllocationsInMetapools) {
  KernelHarness h(KernelMode::kSvaSafe);
  uint64_t before = h.k().pools().stats().registrations;
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/tmp/x").ok());
  uint64_t fd = h.Call(Sys::kOpen, h.user(0), 1);
  std::vector<char> data(4096, 'q');
  ASSERT_TRUE(h.k().PokeUser(h.user(64), data.data(), data.size()).ok());
  h.Call(Sys::kWrite, fd, h.user(64), data.size());
  // open allocated inode+filp objects; write allocated a data block; all
  // were registered.
  EXPECT_GE(h.k().pools().stats().registrations, before + 3);
  EXPECT_EQ(h.k().pools().stats().total_failed(), 0u);
}

// Drives one syscall from every dispatch route (vfs, tasks, sockets, pipes,
// net, plus the scheduler and host helpers on the BKL) with the lock-order
// checker force-enabled: any acquisition that violates the documented
// hierarchy (bkl -> vfs -> tasks -> sockets -> pipes -> files) aborts the
// process, so passing IS the assertion. Runs in every build type — tier-1
// is RelWithDebInfo, where the checker is compiled in but default-off.
TEST(KernelLockOrderTest, AllRoutesRespectTheHierarchy) {
  smp::LockOrderChecker::set_enabled(true);
  uint64_t before = smp::LockOrderChecker::acquisitions_checked();
  {
    KernelHarness h(KernelMode::kSvaSafe);

    // vfs route: open/write/lseek/read/dup/unlink/close on a regular file.
    ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/tmp/order").ok());
    uint64_t fd = h.Call(Sys::kOpen, h.user(0), 1);
    const char payload[] = "lock order";
    ASSERT_TRUE(h.k().PokeUser(h.user(256), payload, sizeof(payload)).ok());
    EXPECT_EQ(h.Call(Sys::kWrite, fd, h.user(256), sizeof(payload)),
              sizeof(payload));
    EXPECT_EQ(h.Call(Sys::kLseek, fd, 0, 0), 0u);
    EXPECT_EQ(h.Call(Sys::kRead, fd, h.user(512), sizeof(payload)),
              sizeof(payload));
    uint64_t dup_fd = h.Call(Sys::kDup, fd);
    EXPECT_EQ(h.Call(Sys::kClose, dup_fd), 0u);
    EXPECT_EQ(h.Call(Sys::kClose, fd), 0u);
    EXPECT_EQ(h.Call(Sys::kUnlink, h.user(0)), 0u);

    // tasks route: fork/sigaction/kill (self-delivery on return)/brk/
    // exec/exit/wait — the full lifecycle.
    EXPECT_EQ(h.Call(Sys::kGetPid), 1u);
    h.Call(Sys::kBrk, 4096);
    uint64_t child = h.Call(Sys::kFork);
    EXPECT_EQ(h.Call(Sys::kSigaction, 5, 77), 0u);
    EXPECT_EQ(h.Call(Sys::kKill, 1, 5), 0u);
    EXPECT_EQ(h.Call(Sys::kExecve, h.user(0)), 0u);
    // Exit the child: switch to it via the scheduler (BKL + tasks nest).
    while (h.k().current_pid() != static_cast<int>(child)) {
      ASSERT_TRUE(h.k().Yield().ok());
    }
    EXPECT_EQ(h.Call(Sys::kExit, 0), 0u);
    EXPECT_EQ(h.Call(Sys::kWaitPid, child), child);

    // pipes route: create + write + read through a pipe pair.
    ASSERT_EQ(h.Call(Sys::kPipe, h.user(1024)), 0u);
    uint32_t pipe_fds[2] = {0, 0};
    ASSERT_TRUE(h.k().PeekUser(h.user(1024), pipe_fds, 8).ok());
    EXPECT_EQ(h.Call(Sys::kWrite, pipe_fds[1], h.user(256), 8), 8u);
    EXPECT_EQ(h.Call(Sys::kRead, pipe_fds[0], h.user(512), 8), 8u);

    // sockets route: legacy loopback send/recv.
    uint64_t sock = h.Call(
        Sys::kSocket, static_cast<uint64_t>(SocketDomain::kLegacyLoopback));
    EXPECT_EQ(h.Call(Sys::kSend, sock, h.user(256), 8), 8u);
    EXPECT_EQ(h.Call(Sys::kRecv, sock, h.user(512), 8), 8u);

    // net route: datagram socket bind + send-to-self over loopback.
    uint64_t udp = h.Call(Sys::kSocket,
                          static_cast<uint64_t>(SocketDomain::kDatagram));
    EXPECT_EQ(h.Call(Sys::kBind, udp, 4242), 0u);
  }
  // The routes above really exercised ranked locks under the checker.
  EXPECT_GT(smp::LockOrderChecker::acquisitions_checked(), before);
  EXPECT_EQ(smp::LockOrderChecker::held_depth(), 0);
  smp::LockOrderChecker::set_enabled(
      smp::LockOrderChecker::kEnabledByDefault);
}

TEST(KernelSafetyTest, ContextSwitchUsesLazyFpSave) {
  KernelHarness h(KernelMode::kSvaGcc);
  ASSERT_EQ(h.Call(Sys::kFork), 2u);
  // No FP activity: switches skip the FP save.
  ASSERT_TRUE(h.k().Yield().ok());
  ASSERT_TRUE(h.k().Yield().ok());
  EXPECT_GE(h.k().svaos().stats().save_fp_skipped, 2u);
  uint64_t saved_before = h.k().svaos().stats().save_fp;
  // Dirty the FP state: the next save is real.
  h.machine_.cpu().WriteFpRegister(0, 1.25);
  ASSERT_TRUE(h.k().Yield().ok());
  EXPECT_EQ(h.k().svaos().stats().save_fp, saved_before + 1);
}

}  // namespace
}  // namespace sva::kernel
