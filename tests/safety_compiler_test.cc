#include <gtest/gtest.h>

#include "src/safety/compiler.h"
#include "src/svm/svm.h"
#include "src/vir/bytecode.h"
#include "src/verifier/typechecker.h"
#include "src/vir/parser.h"
#include "src/vir/printer.h"
#include "src/vir/structural_verifier.h"

namespace sva::safety {
namespace {

std::unique_ptr<vir::Module> Parse(const char* text) {
  auto m = vir::ParseModule(text);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  Status v = vir::VerifyModule(**m);
  EXPECT_TRUE(v.ok()) << v.ToString();
  return std::move(m).value();
}

// Compiles with the safety compiler, re-verifies, and loads into the SVM.
struct Pipeline {
  explicit Pipeline(const char* text, SafetyCompilerOptions options = {}) {
    module = Parse(text);
    auto r = RunSafetyCompiler(*module, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      report = *r;
    }
    Status v = vir::VerifyModule(*module);
    EXPECT_TRUE(v.ok()) << v.ToString() << "\n" << vir::PrintModule(*module);
    auto lr = svm_.LoadModule(std::move(module));
    EXPECT_TRUE(lr.ok()) << lr.status().ToString();
    if (lr.ok()) {
      loaded = std::move(lr).value();
    }
  }

  svm::SecureVirtualMachine svm_;
  std::unique_ptr<vir::Module> module;
  std::unique_ptr<svm::LoadedModule> loaded;
  SafetyReport report;
};

constexpr const char* kHeapOverflow = R"(
module "heap_overflow"
declare i8* @kmalloc(i64)
declare void @kfree(i8*)

define i8 @poke(i64 %idx) {
entry:
  %buf = call i8* @kmalloc(i64 32)
  %slot = getelementptr i8* %buf, i64 %idx
  %v = load i8, i8* %slot
  call void @kfree(i8* %buf)
  ret i8 %v
}
)";

TEST(SafetyCompilerTest, InsertsRegistrationAndChecks) {
  Pipeline p(kHeapOverflow);
  EXPECT_GE(p.report.metapools, 1u);
  EXPECT_GE(p.report.reg_obj, 1u);
  EXPECT_GE(p.report.drop_obj, 1u);
  EXPECT_GE(p.report.direct_bounds_checks + p.report.bounds_checks, 1u);
  std::string text = vir::PrintModule(*p.loaded->module().GetFunction("poke")
                                           ->parent());
  EXPECT_NE(text.find("pchk.reg.obj"), std::string::npos);
  EXPECT_NE(text.find("pchk.drop.obj"), std::string::npos);
}

TEST(SafetyCompilerTest, CatchesHeapOverflowAtRuntime) {
  Pipeline p(kHeapOverflow);
  ASSERT_NE(p.loaded, nullptr);
  // In-bounds access is unaffected.
  svm::ExecResult ok = p.loaded->Run("poke", {31});
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  // Out-of-bounds access trips the inserted bounds check.
  svm::ExecResult bad = p.loaded->Run("poke", {32});
  EXPECT_EQ(bad.status.code(), StatusCode::kSafetyViolation);
  EXPECT_FALSE(p.loaded->pools().violations().empty());
}

TEST(SafetyCompilerTest, GlobalArrayOverflowCaught) {
  Pipeline p(R"(
module "global_oob"
global @table : [16 x i32]

define i32 @peek(i64 %idx) {
entry:
  %slot = getelementptr [16 x i32]* @table, i64 0, i64 %idx
  %v = load i32, i32* %slot
  ret i32 %v
}
)");
  ASSERT_NE(p.loaded, nullptr);
  EXPECT_GE(p.report.global_registrations, 1u);
  EXPECT_TRUE(p.loaded->Run("peek", {15}).status.ok());
  svm::ExecResult bad = p.loaded->Run("peek", {16});
  EXPECT_EQ(bad.status.code(), StatusCode::kSafetyViolation);
}

TEST(SafetyCompilerTest, StaticSafeGepsAreElided) {
  Pipeline p(R"(
module "static_safe"
%vec = type { i32, [4 x i32] }
global @v : %vec

define i32 @get2() {
entry:
  %slot = getelementptr %vec* @v, i64 0, i32 1, i64 2
  %x = load i32, i32* %slot
  ret i32 %x
}
)");
  EXPECT_GE(p.report.elided_bounds_checks, 1u);
  EXPECT_EQ(p.report.bounds_checks + p.report.direct_bounds_checks, 0u);
  EXPECT_TRUE(p.loaded->Run("get2", {}).status.ok());
}

TEST(SafetyCompilerTest, StackObjectsRegisteredAndDropped) {
  Pipeline p(R"(
module "stack"
define i8 @local(i64 %idx) {
entry:
  %buf = alloca i8, i64 16
  %slot = getelementptr i8* %buf, i64 %idx
  store i8 7, i8* %slot
  %v = load i8, i8* %slot
  ret i8 %v
}
define i8 @wrapper(i64 %idx) {
entry:
  %a = call i8 @local(i64 %idx)
  %b = call i8 @local(i64 %idx)
  %s = add i8 %a, %b
  ret i8 %s
}
)");
  EXPECT_GE(p.report.stack_registrations, 1u);
  ASSERT_NE(p.loaded, nullptr);
  // Registration/drop must balance: calling twice reuses the stack slot.
  EXPECT_TRUE(p.loaded->Run("wrapper", {3}).status.ok());
  // Stack smash is caught.
  svm::ExecResult bad = p.loaded->Run("local", {16});
  EXPECT_EQ(bad.status.code(), StatusCode::kSafetyViolation);
}

TEST(SafetyCompilerTest, EscapingAllocaPromotedToHeap) {
  Pipeline p(R"(
module "escape"
global @stash : i32*

define void @leak() {
entry:
  %obj = alloca i32, i64 1
  store i32* %obj, i32** @stash
  ret void
}
define i32 @use_after_return() {
entry:
  call void @leak()
  %p = load i32*, i32** @stash
  %v = load i32, i32* %p
  ret i32 %v
}
)");
  EXPECT_EQ(p.report.stack_promotions, 1u);
  ASSERT_NE(p.loaded, nullptr);
  // The promoted object lives on the heap; the dangling use stays within
  // its (freed but pool-bound) object, so it is rendered harmless rather
  // than trapping (dangling pointers are not detected, Section 4.1).
  svm::ExecResult r = p.loaded->Run("use_after_return", {});
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
}

TEST(SafetyCompilerTest, TypeHomogeneousPoolsSkipLoadStoreChecks) {
  Pipeline p(R"(
module "th"
%node = type { i64, i64 }
declare i8* @kmalloc(i64)

define i64 @touch() {
entry:
  %raw = call i8* @kmalloc(i64 16)
  %n = bitcast i8* %raw to %node*
  %f = getelementptr %node* %n, i64 0, i32 0
  store i64 5, i64* %f
  %v = load i64, i64* %f
  ret i64 %v
}
)");
  EXPECT_GE(p.report.elided_th_ls_checks, 1u);
  EXPECT_TRUE(p.loaded->Run("touch", {}).status.ok());
}

TEST(SafetyCompilerTest, NonTHCompletePoolsGetLoadStoreChecks) {
  Pipeline p(R"(
module "nonth"
declare i8* @kmalloc(i64)

define i64 @mixed(i1 %c) {
entry:
  %raw = call i8* @kmalloc(i64 16)
  %as64 = bitcast i8* %raw to i64*
  store i64 1, i64* %as64
  %as32 = bitcast i8* %raw to i32*
  store i32 2, i32* %as32
  %v = load i64, i64* %as64
  ret i64 %v
}
)");
  EXPECT_GE(p.report.ls_checks, 1u);
  EXPECT_TRUE(p.loaded->Run("mixed", {0}).status.ok());
}

TEST(SafetyCompilerTest, KernelPoolCorrelationMergesPartitions) {
  // Two kmalloc call sites with the same size class share internal reuse,
  // so their partitions must merge into one metapool (Section 4.3).
  Pipeline p(R"(
module "merge"
declare i8* @kmalloc(i64)
define void @two() {
entry:
  %a = call i8* @kmalloc(i64 100)
  %b = call i8* @kmalloc(i64 100)
  store i8 1, i8* %a
  store i8 2, i8* %b
  ret void
}
)");
  EXPECT_GE(p.report.merged_by_kernel_pools, 1u);
  vir::Module& m = p.loaded->module();
  vir::Function* two = m.GetFunction("two");
  // Both kmalloc results carry the same metapool annotation.
  std::vector<std::string> pools;
  for (vir::Instruction* inst : two->AllInstructions()) {
    const auto* call = dynamic_cast<const vir::CallInst*>(inst);
    if (call != nullptr && call->called_function() != nullptr &&
        call->called_function()->name() == "kmalloc") {
      pools.push_back(m.MetapoolOf(call));
    }
  }
  ASSERT_EQ(pools.size(), 2u);
  EXPECT_FALSE(pools[0].empty());
  EXPECT_EQ(pools[0], pools[1]);
}

TEST(SafetyCompilerTest, IncompletePoolsGetReducedChecks) {
  SafetyCompilerOptions options;
  Pipeline p(R"(
module "reduced"
declare void @external_driver(i8*)
declare i8* @kmalloc(i64)

define i8 @shared(i64 %idx) {
entry:
  %buf = call i8* @kmalloc(i64 32)
  call void @external_driver(i8* %buf)
  %slot = getelementptr i8* %buf, i64 %idx
  %v = load i8, i8* %slot
  ret i8 %v
}
)",
             options);
  EXPECT_GE(p.report.reduced_ls_checks, 1u);
  // Bind a no-op host for the external driver so execution reaches the
  // overflow.
  p.loaded->interpreter().BindHost(
      "external_driver",
      [](svm::Interpreter&, std::span<const uint64_t>) -> Result<uint64_t> {
        return uint64_t{0};
      });
  // The bounds check still exists (registered objects are still checked on
  // incomplete partitions) and still catches the overflow when the source
  // object is registered.
  svm::ExecResult bad = p.loaded->Run("shared", {32});
  EXPECT_EQ(bad.status.code(), StatusCode::kSafetyViolation);
}

TEST(SafetyCompilerTest, IndirectCallChecksInserted) {
  Pipeline p(R"(
module "icall"
global @handler : i64 (i64)*

define i64 @real(i64 %x) {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}
define void @setup() {
entry:
  store i64 (i64)* @real, i64 (i64)** @handler
  ret void
}
define i64 @go(i64 %x) {
entry:
  %fp = load i64 (i64)*, i64 (i64)** @handler
  %r = call i64 %fp(i64 %x)
  ret i64 %r
}
)");
  EXPECT_GE(p.report.indirect_checks, 1u);
  ASSERT_TRUE(p.loaded->Run("setup", {}).status.ok());
  svm::ExecResult r = p.loaded->Run("go", {41});
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.value, 42u);
}

TEST(SafetyCompilerTest, OutputPassesTypeChecker) {
  Pipeline p(kHeapOverflow);
  verifier::TypeCheckResult result =
      verifier::TypeCheckModule(p.loaded->module());
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
}

TEST(SafetyCompilerTest, MetricsArePopulated) {
  Pipeline p(kHeapOverflow);
  EXPECT_GE(p.report.loads.total, 1u);
  EXPECT_GE(p.report.array_indexing.total, 1u);
  EXPECT_EQ(p.report.allocation_sites, 1u);
  EXPECT_EQ(p.report.allocation_sites_registered, 1u);
}

TEST(SafetyCompilerTest, SvmCachesSignedTranslations) {
  auto module = Parse(kHeapOverflow);
  auto r = RunSafetyCompiler(*module);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> bytecode = vir::WriteBytecode(*module);
  svm::SecureVirtualMachine svm;
  EXPECT_FALSE(svm.CacheContains(bytecode));
  auto loaded = svm.LoadBytecode(bytecode);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(svm.CacheContains(bytecode));
  // A tampered image does not hit the signed cache.
  std::vector<uint8_t> tampered = bytecode;
  tampered[tampered.size() - 1] ^= 0xFF;
  EXPECT_FALSE(svm.CacheContains(tampered));
  // The loaded module executes with checks live.
  EXPECT_EQ((*loaded)->Run("poke", {40}).status.code(),
            StatusCode::kSafetyViolation);
}

}  // namespace
}  // namespace sva::safety
