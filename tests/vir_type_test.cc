#include <gtest/gtest.h>

#include "src/vir/type.h"

namespace sva::vir {
namespace {

TEST(TypeTest, InterningGivesPointerEquality) {
  TypeContext ctx;
  EXPECT_EQ(ctx.I32(), ctx.IntTy(32));
  EXPECT_EQ(ctx.PointerTo(ctx.I32()), ctx.PointerTo(ctx.I32()));
  EXPECT_EQ(ctx.ArrayOf(ctx.I8(), 16), ctx.ArrayOf(ctx.I8(), 16));
  EXPECT_NE(ctx.ArrayOf(ctx.I8(), 16),
            static_cast<const ArrayType*>(ctx.ArrayOf(ctx.I8(), 17)));
  EXPECT_EQ(ctx.Struct({ctx.I32(), ctx.I64()}),
            ctx.Struct({ctx.I32(), ctx.I64()}));
  EXPECT_EQ(ctx.FunctionTy(ctx.VoidTy(), {ctx.I32()}),
            ctx.FunctionTy(ctx.VoidTy(), {ctx.I32()}));
}

TEST(TypeTest, NamedStructIdentityAndRecursion) {
  TypeContext ctx;
  StructType* node = ctx.NamedStruct("list_head");
  EXPECT_TRUE(node->IsOpaque());
  node->SetBody({ctx.PointerTo(node), ctx.PointerTo(node)});
  EXPECT_FALSE(node->IsOpaque());
  EXPECT_EQ(ctx.NamedStruct("list_head"), node);
  EXPECT_EQ(ctx.FindNamedStruct("list_head"), node);
  EXPECT_EQ(ctx.FindNamedStruct("missing"), nullptr);
}

TEST(TypeTest, ToStringRendering) {
  TypeContext ctx;
  EXPECT_EQ(ctx.I32()->ToString(), "i32");
  EXPECT_EQ(ctx.PointerTo(ctx.PointerTo(ctx.I8()))->ToString(), "i8**");
  EXPECT_EQ(ctx.ArrayOf(ctx.I16(), 4)->ToString(), "[4 x i16]");
  EXPECT_EQ(ctx.Struct({ctx.I32(), ctx.F64()})->ToString(), "{ i32, f64 }");
  EXPECT_EQ(ctx.NamedStruct("task")->ToString(), "%task");
  EXPECT_EQ(
      ctx.FunctionTy(ctx.I32(), {ctx.PointerTo(ctx.I8())}, true)->ToString(),
      "i32 (i8*, ...)");
}

TEST(TypeTest, SizeOfScalars) {
  TypeContext ctx;
  EXPECT_EQ(SizeOf(ctx.I1()), 1u);
  EXPECT_EQ(SizeOf(ctx.I8()), 1u);
  EXPECT_EQ(SizeOf(ctx.I16()), 2u);
  EXPECT_EQ(SizeOf(ctx.I32()), 4u);
  EXPECT_EQ(SizeOf(ctx.I64()), 8u);
  EXPECT_EQ(SizeOf(ctx.F32()), 4u);
  EXPECT_EQ(SizeOf(ctx.F64()), 8u);
  EXPECT_EQ(SizeOf(ctx.PointerTo(ctx.I8())), 8u);
}

TEST(TypeTest, SizeOfAggregatesWithPadding) {
  TypeContext ctx;
  // { i8, i32 } -> i8 at 0, pad to 4, i32 at 4, total 8.
  const StructType* s = ctx.Struct({ctx.I8(), ctx.I32()});
  EXPECT_EQ(SizeOf(s), 8u);
  EXPECT_EQ(AlignOf(s), 4u);
  EXPECT_EQ(StructFieldOffset(s, 0), 0u);
  EXPECT_EQ(StructFieldOffset(s, 1), 4u);
  // { i8, i8, i16, i64 } -> offsets 0,1,2,8, size 16.
  const StructType* t =
      ctx.Struct({ctx.I8(), ctx.I8(), ctx.I16(), ctx.I64()});
  EXPECT_EQ(StructFieldOffset(t, 2), 2u);
  EXPECT_EQ(StructFieldOffset(t, 3), 8u);
  EXPECT_EQ(SizeOf(t), 16u);
  EXPECT_EQ(SizeOf(ctx.ArrayOf(s, 3)), 24u);
}

TEST(TypeTest, StructTailPadding) {
  TypeContext ctx;
  // { i64, i8 } pads to alignment 8 -> 16 bytes.
  EXPECT_EQ(SizeOf(ctx.Struct({ctx.I64(), ctx.I8()})), 16u);
}

TEST(TypeTest, OpaqueStructIsUnsizedNotFatal) {
  TypeContext ctx;
  StructType* opaque = ctx.NamedStruct("opaque");
  ASSERT_TRUE(opaque->IsOpaque());
  // No layout: reports zero bytes instead of asserting, and IsSized() is
  // the queryable marker callers must consult before allocating.
  EXPECT_EQ(SizeOf(opaque), 0u);
  EXPECT_FALSE(IsSized(opaque));
  EXPECT_FALSE(IsSized(ctx.ArrayOf(opaque, 4)));
  EXPECT_FALSE(IsSized(ctx.Struct({ctx.I32(), opaque})));
  // Pointers to opaque structs are first-class and sized.
  EXPECT_TRUE(IsSized(ctx.PointerTo(opaque)));
  EXPECT_EQ(SizeOf(ctx.PointerTo(opaque)), 8u);

  // Defining the body makes it sized.
  StructType* defined = ctx.NamedStruct("defined");
  defined->SetBody({ctx.I64(), ctx.I8()});
  EXPECT_TRUE(IsSized(defined));
  EXPECT_EQ(SizeOf(defined), 16u);
}

TEST(TypeTest, SizedScalarsAndAggregates) {
  TypeContext ctx;
  EXPECT_TRUE(IsSized(ctx.VoidTy()));
  EXPECT_TRUE(IsSized(ctx.I32()));
  EXPECT_TRUE(IsSized(ctx.ArrayOf(ctx.I16(), 12)));
  EXPECT_TRUE(IsSized(ctx.Struct({ctx.I8(), ctx.F64()})));
  EXPECT_TRUE(IsSized(ctx.FunctionTy(ctx.VoidTy(), {})));
}

TEST(TypeTest, PredicateHelpers) {
  TypeContext ctx;
  EXPECT_TRUE(ctx.I32()->IsArithmetic());
  EXPECT_TRUE(ctx.F64()->IsArithmetic());
  EXPECT_FALSE(ctx.PointerTo(ctx.I8())->IsArithmetic());
  EXPECT_TRUE(ctx.PointerTo(ctx.I8())->IsFirstClass());
  EXPECT_FALSE(ctx.VoidTy()->IsFirstClass());
  EXPECT_FALSE(ctx.FunctionTy(ctx.VoidTy(), {})->IsFirstClass());
}

// Parameterized sweep: array sizes scale linearly for every element type.
class ArraySizeTest
    : public ::testing::TestWithParam<std::tuple<unsigned, uint64_t>> {};

TEST_P(ArraySizeTest, LinearScaling) {
  TypeContext ctx;
  auto [bits, count] = GetParam();
  const Type* elem = ctx.IntTy(bits);
  EXPECT_EQ(SizeOf(ctx.ArrayOf(elem, count)), SizeOf(elem) * count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArraySizeTest,
    ::testing::Combine(::testing::Values(8u, 16u, 32u, 64u),
                       ::testing::Values(0u, 1u, 7u, 64u, 4096u)));

}  // namespace
}  // namespace sva::vir
