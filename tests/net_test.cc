// The networking subsystem: NIC descriptor rings, DMA bounds, the
// metapool-correlated packet-buffer pool, the socket layer and its kernel
// syscall error paths, the loopback echo end-to-end path, and a
// multi-worker rx/tx stress test (labelled `concurrency` for the tsan
// preset).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/kernel/kernel.h"
#include "src/net/client.h"
#include "src/net/net_stack.h"
#include "src/net/skb.h"
#include "src/runtime/metapool_runtime.h"
#include "src/smp/percpu.h"
#include "src/svaos/svaos.h"

namespace sva::net {
namespace {

// --- VirtualNic: rings, wrap, full, DMA bounds -------------------------------

class NicTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRing = 0x1000;    // 4 rx descriptors.
  static constexpr uint64_t kTxRing = 0x1800;  // 4 tx descriptors.
  static constexpr uint64_t kBufs = 0x2000;    // 4 x 256-byte buffers.
  static constexpr uint64_t kRingSize = 4;

  void SetUp() override {
    hw::VirtualNic& nic = machine_.nic();
    ASSERT_TRUE(nic.RegWrite(static_cast<uint16_t>(hw::NicReg::kRxBase), kRing)
                    .ok());
    ASSERT_TRUE(
        nic.RegWrite(static_cast<uint16_t>(hw::NicReg::kRxSize), kRingSize)
            .ok());
    ASSERT_TRUE(
        nic.RegWrite(static_cast<uint16_t>(hw::NicReg::kTxBase), kTxRing)
            .ok());
    ASSERT_TRUE(
        nic.RegWrite(static_cast<uint16_t>(hw::NicReg::kTxSize), kRingSize)
            .ok());
    ASSERT_TRUE(nic.RegWrite(static_cast<uint16_t>(hw::NicReg::kCommand),
                             static_cast<uint64_t>(hw::NicCommand::kEnable))
                    .ok());
  }

  void PostRx(uint64_t index, uint64_t buffer, uint16_t capacity) {
    uint64_t at = kRing + index * hw::kNicDescriptorBytes;
    hw::PhysicalMemory& mem = machine_.memory();
    ASSERT_TRUE(mem.Write(at, 8, buffer).ok());
    ASSERT_TRUE(mem.Write(at + 8, 2, capacity).ok());
    ASSERT_TRUE(mem.Write(at + 10, 2, 0).ok());
    ASSERT_TRUE(mem.Write(at + 12, 2, hw::kNicDescOwned).ok());
  }

  uint16_t DescLength(uint64_t index) {
    return static_cast<uint16_t>(*machine_.memory().Read(
        kRing + index * hw::kNicDescriptorBytes + 10, 2));
  }

  uint16_t DescFlags(uint64_t index) {
    return static_cast<uint16_t>(*machine_.memory().Read(
        kRing + index * hw::kNicDescriptorBytes + 12, 2));
  }

  Status Receive(const std::string& frame) {
    return machine_.nic().Receive(
        reinterpret_cast<const uint8_t*>(frame.data()), frame.size());
  }

  hw::Machine machine_;
};

TEST_F(NicTest, RxFillsPostedDescriptorsAndRaisesIrq) {
  for (uint64_t i = 0; i < kRingSize; ++i) {
    PostRx(i, kBufs + i * 256, 256);
  }
  ASSERT_TRUE(Receive("hello").ok());
  EXPECT_TRUE(machine_.nic().irq_pending());
  EXPECT_EQ(DescLength(0), 5u);
  EXPECT_EQ(DescFlags(0) & hw::kNicDescOwned, 0u);  // Handed back.
  EXPECT_EQ(std::memcmp(machine_.memory().raw(kBufs), "hello", 5), 0);
  EXPECT_EQ(machine_.nic().counters().rx_frames, 1u);
}

TEST_F(NicTest, RxRingFullDropsAndRepostWraps) {
  for (uint64_t i = 0; i < kRingSize; ++i) {
    PostRx(i, kBufs + i * 256, 256);
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(Receive("frame").ok());
  }
  // All four descriptors consumed; the fifth frame has nowhere to land.
  EXPECT_EQ(Receive("dropped").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(machine_.nic().counters().rx_frames, 4u);
  EXPECT_EQ(machine_.nic().counters().rx_dropped_full, 1u);
  // Repost slot 0: the device's head has wrapped around to it.
  EXPECT_EQ(*machine_.nic().RegRead(
                static_cast<uint16_t>(hw::NicReg::kRxHead)),
            0u);
  PostRx(0, kBufs, 256);
  ASSERT_TRUE(Receive("wrap!").ok());
  EXPECT_EQ(machine_.nic().counters().rx_frames, 5u);
  EXPECT_EQ(DescLength(0), 5u);
}

TEST_F(NicTest, RxWhileDisabledDrops) {
  ASSERT_TRUE(machine_.nic()
                  .RegWrite(static_cast<uint16_t>(hw::NicReg::kCommand),
                            static_cast<uint64_t>(hw::NicCommand::kReset))
                  .ok());
  PostRx(0, kBufs, 256);
  EXPECT_EQ(Receive("nope").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(machine_.nic().counters().rx_dropped_disabled, 1u);
  EXPECT_EQ(machine_.nic().counters().rx_frames, 0u);
}

TEST_F(NicTest, DmaBoundsRejected) {
  // Descriptor whose buffer points past the end of physical memory.
  PostRx(0, machine_.memory().size() - 8, 256);
  EXPECT_EQ(Receive("overrun").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(machine_.nic().counters().dma_errors, 1u);
  EXPECT_EQ(machine_.nic().counters().rx_frames, 0u);
  // The device head did not advance; a descriptor whose capacity cannot
  // hold the frame is also refused.
  PostRx(0, kBufs, 4);
  EXPECT_EQ(Receive("too long for four bytes").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(machine_.nic().counters().dma_errors, 2u);
  EXPECT_EQ(machine_.nic().counters().rx_frames, 0u);
}

// --- SkbPool: registration/drop lifecycle ------------------------------------

TEST(SkbPoolTest, RegistersOnAllocDropsOnFree) {
  hw::Machine machine;
  runtime::MetaPoolRuntime pools;
  SkbPool pool(machine, &pools, /*safety_checks=*/true);
  auto skb = pool.Alloc();
  ASSERT_TRUE(skb.ok());
  EXPECT_EQ(pool.live(), 1u);
  // In bounds: the whole 2 KB buffer is one registered object.
  EXPECT_TRUE(pools.BoundsCheck(*pool.metapool(), skb->addr,
                                skb->addr + kSkbBufferBytes - 1)
                  .ok());
  // One past the end: the parser overrun the exploit study relies on.
  Status s = pools.BoundsCheck(*pool.metapool(), skb->addr,
                               skb->addr + kSkbBufferBytes);
  EXPECT_EQ(s.code(), StatusCode::kSafetyViolation);
  ASSERT_TRUE(pool.Free(skb->addr).ok());
  EXPECT_EQ(pool.live(), 0u);
  // The dropped buffer is no longer a valid source object.
  EXPECT_FALSE(
      pools.BoundsCheck(*pool.metapool(), skb->addr, skb->addr + 1).ok());
}

// --- NetStack: sockets, loopback echo, malformed frames ----------------------

class NetStackTest : public ::testing::Test {
 protected:
  NetStackTest()
      : svaos_(machine_),
        stack_(machine_, svaos_, &pools_, /*safety_checks=*/true,
               /*use_svaos=*/true),
        client_(stack_) {
    Status s = stack_.Boot();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  std::string ReadSlice(const NetStack::RecvSlice& slice) {
    std::string out(slice.len, '\0');
    std::memcpy(out.data(), machine_.memory().raw(slice.data_addr),
                slice.len);
    return out;
  }

  hw::Machine machine_;
  svaos::SvaOS svaos_;
  runtime::MetaPoolRuntime pools_;
  NetStack stack_;
  LoopbackClient client_;
};

TEST_F(NetStackTest, DatagramEchoEndToEnd) {
  auto sid = stack_.CreateSocket(SocketKind::kDatagram);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(stack_.Bind(*sid, 7).ok());
  uint64_t live_before = stack_.skbs().live();
  ASSERT_TRUE(client_.SendDatagram(9, 7, {'p', 'i', 'n', 'g'}).ok());
  auto slice = stack_.RecvBegin(*sid, 64);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(ReadSlice(*slice), "ping");
  ASSERT_TRUE(stack_.RecvFinish(*slice).ok());
  // The packet buffer went back to the pool (rx ring stayed fully posted).
  EXPECT_EQ(stack_.skbs().live(), live_before);
  EXPECT_EQ(stack_.stats().rx_delivered.load(), 1u);

  // Echo back out through the tx ring; the client sees the reply.
  auto skb = stack_.AllocTxSkb();
  ASSERT_TRUE(skb.ok());
  std::memcpy(machine_.memory().raw(skb->addr + kTxPayloadOffset), "pong", 4);
  auto sent = stack_.Send(*sid, *skb, 4, kClientIp, 9);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, 4u);
  auto datagrams = client_.TakeDatagrams();
  ASSERT_EQ(datagrams.size(), 1u);
  EXPECT_EQ(std::string(datagrams[0].begin(), datagrams[0].end()), "pong");
}

TEST_F(NetStackTest, StreamConnectAcceptAndData) {
  auto listener = stack_.CreateSocket(SocketKind::kListener);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(stack_.Bind(*listener, 80).ok());
  auto conn = client_.OpenStream(80);
  ASSERT_TRUE(conn.ok());
  auto accepted = stack_.Accept(*listener);
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(client_.SendStream(*conn, "GET /").ok());
  auto slice = stack_.RecvBegin(*accepted, 3);  // Partial stream read.
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(ReadSlice(*slice), "GET");
  ASSERT_TRUE(stack_.RecvFinish(*slice).ok());
  auto rest = stack_.RecvBegin(*accepted, 64);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(ReadSlice(*rest), " /");
  ASSERT_TRUE(stack_.RecvFinish(*rest).ok());

  auto skb = stack_.AllocTxSkb();
  ASSERT_TRUE(skb.ok());
  std::memcpy(machine_.memory().raw(skb->addr + kTxPayloadOffset), "OK", 2);
  ASSERT_TRUE(stack_.Send(*accepted, *skb, 2, 0, 0).ok());
  EXPECT_EQ(client_.TakeStream(*conn), "OK");
  ASSERT_TRUE(client_.CloseStream(*conn).ok());
  ASSERT_TRUE(stack_.Close(*accepted).ok());
  ASSERT_TRUE(stack_.Close(*listener).ok());
}

TEST_F(NetStackTest, SocketErrorPaths) {
  auto dgram = stack_.CreateSocket(SocketKind::kDatagram);
  ASSERT_TRUE(dgram.ok());
  EXPECT_EQ(stack_.Bind(*dgram, 0).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(stack_.Bind(*dgram, 7).ok());
  EXPECT_EQ(stack_.Bind(*dgram, 8).code(),
            StatusCode::kFailedPrecondition);  // Already bound.
  auto other = stack_.CreateSocket(SocketKind::kDatagram);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(stack_.Bind(*other, 7).code(),
            StatusCode::kAlreadyExists);  // Port in use.
  EXPECT_EQ(stack_.Accept(*dgram).status().code(),
            StatusCode::kInvalidArgument);  // Not a listener.

  auto listener = stack_.CreateSocket(SocketKind::kListener);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(stack_.Bind(*listener, 80).ok());
  EXPECT_EQ(stack_.Accept(*listener).status().code(),
            StatusCode::kFailedPrecondition);  // Empty backlog.
  auto skb = stack_.AllocTxSkb();
  ASSERT_TRUE(skb.ok());
  EXPECT_EQ(stack_.Send(*listener, *skb, 4, kClientIp, 9).status().code(),
            StatusCode::kInvalidArgument);  // Send on a listener.
  EXPECT_EQ(stack_.RecvBegin(*listener, 64).status().code(),
            StatusCode::kInvalidArgument);  // Recv on a listener.

  ASSERT_TRUE(stack_.Close(*dgram).ok());
  EXPECT_EQ(stack_.Close(*dgram).code(), StatusCode::kNotFound);
  EXPECT_EQ(stack_.RecvBegin(*dgram, 64).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(stack_.Close(9999).code(), StatusCode::kNotFound);
}

TEST_F(NetStackTest, MalformedLengthFieldCaughtAndStackSurvives) {
  auto sid = stack_.CreateSocket(SocketKind::kDatagram);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(stack_.Bind(*sid, 7).ok());
  uint64_t live_before = stack_.skbs().live();
  // The UDP header claims 4 KB of payload inside a 2 KB packet buffer.
  ASSERT_TRUE(client_.SendMalformedDatagram(9, 7, /*claimed_payload=*/4096,
                                            /*actual_payload=*/64)
                  .ok());
  EXPECT_EQ(stack_.stats().rx_violations.load(), 1u);
  EXPECT_EQ(stack_.stats().rx_delivered.load(), 0u);
  EXPECT_EQ(stack_.skbs().live(), live_before);  // Attack skb freed.
  // The stack survives and still delivers benign traffic.
  ASSERT_TRUE(client_.SendDatagram(9, 7, {'o', 'k'}).ok());
  auto slice = stack_.RecvBegin(*sid, 64);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(ReadSlice(*slice), "ok");
  ASSERT_TRUE(stack_.RecvFinish(*slice).ok());
}

// --- Kernel syscall surface --------------------------------------------------

class NetSyscallTest : public ::testing::Test {
 protected:
  NetSyscallTest() : machine_(128ull << 20, 4096) {
    kernel::KernelConfig config;
    config.mode = kernel::KernelMode::kSvaSafe;
    kernel_ = std::make_unique<kernel::Kernel>(machine_, config);
    Status s = kernel_->Boot();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  uint64_t Call(kernel::Sys n, uint64_t a0 = 0, uint64_t a1 = 0,
                uint64_t a2 = 0, uint64_t a3 = 0) {
    auto r = kernel_->Syscall(n, a0, a1, a2, a3);
    EXPECT_TRUE(r.ok());
    return r.ok() ? *r : ~0ull;
  }

  uint64_t user() const { return kernel::kUserVirtualBase + 0x100000; }

  static uint64_t Dest(uint32_t ip, uint16_t port) {
    return (static_cast<uint64_t>(ip) << 16) | port;
  }

  hw::Machine machine_;
  std::unique_ptr<kernel::Kernel> kernel_;
};

constexpr uint64_t kEInval = static_cast<uint64_t>(-22);
constexpr uint64_t kEBadF = static_cast<uint64_t>(-9);
constexpr uint64_t kEAgain = static_cast<uint64_t>(-11);
constexpr uint64_t kEMsgSize = static_cast<uint64_t>(-90);
constexpr uint64_t kEAddrInUse = static_cast<uint64_t>(-98);

TEST_F(NetSyscallTest, ErrorPaths) {
  using kernel::Sys;
  EXPECT_EQ(Call(Sys::kSocket, 77), kEInval);  // Unknown domain.
  EXPECT_EQ(Call(Sys::kBind, 999, 80), kEBadF);
  ASSERT_TRUE(kernel_->PokeUserString(user(), "/tmp/f").ok());
  uint64_t file = Call(Sys::kOpen, user(), 1);  // A non-net fd.
  EXPECT_EQ(Call(Sys::kBind, file, 80), kEBadF);

  uint64_t dgram = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
  EXPECT_EQ(Call(Sys::kBind, dgram, 0), kEInval);
  EXPECT_EQ(Call(Sys::kBind, dgram, 7000), 0u);
  uint64_t other = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
  EXPECT_EQ(Call(Sys::kBind, other, 7000), kEAddrInUse);
  EXPECT_EQ(Call(Sys::kAccept, dgram), kEInval);  // Not a listener.

  uint64_t listener = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
  EXPECT_EQ(Call(Sys::kBind, listener, 8080), 0u);
  EXPECT_EQ(Call(Sys::kAccept, listener), kEAgain);  // Empty backlog.

  // A datagram larger than one frame's payload.
  EXPECT_EQ(Call(Sys::kSend, dgram, user(), kMaxUdpPayload + 1,
                 Dest(kServerIp, 7000)),
            kEMsgSize);
  // Recv on an empty queue would block: kEAgain, not 0 (0 is reserved for
  // EOF after the peer's FIN — the non-blocking contract the event queue
  // relies on).
  EXPECT_EQ(Call(Sys::kRecv, dgram, user(), 512), kEAgain);
}

TEST_F(NetSyscallTest, LoopbackEchoThroughSyscalls) {
  using kernel::Sys;
  uint64_t fd = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
  EXPECT_EQ(Call(Sys::kBind, fd, 9001), 0u);
  const std::string msg = "over the lo device";
  ASSERT_TRUE(kernel_->PokeUser(user(), msg.data(), msg.size()).ok());
  EXPECT_EQ(Call(Sys::kSend, fd, user(), msg.size(),
                 Dest(kLoopbackIp, 9001)),
            msg.size());
  EXPECT_EQ(Call(Sys::kRecv, fd, user() + 4096, 2048), msg.size());
  std::string got(msg.size(), '\0');
  ASSERT_TRUE(
      kernel_->PeekUser(user() + 4096, got.data(), got.size()).ok());
  EXPECT_EQ(got, msg);
  EXPECT_EQ(Call(Sys::kClose, fd), 0u);
  // The socket is gone: send/recv on the stale fd fail cleanly.
  EXPECT_EQ(Call(Sys::kRecv, fd, user(), 64), kEBadF);
}

TEST_F(NetSyscallTest, AcceptedConnectionServesOverSyscalls) {
  using kernel::Sys;
  uint64_t listener = Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
  EXPECT_EQ(Call(Sys::kBind, listener, 80), 0u);
  LoopbackClient client(*kernel_->net());
  auto conn = client.OpenStream(80);
  ASSERT_TRUE(conn.ok());
  uint64_t fd = Call(Sys::kAccept, listener);
  ASSERT_TRUE(client.SendStream(*conn, "GET /index.html").ok());
  EXPECT_EQ(Call(Sys::kRecv, fd, user(), 512), 15u);
  const std::string body = "<html>hi</html>";
  ASSERT_TRUE(kernel_->PokeUser(user(), body.data(), body.size()).ok());
  EXPECT_EQ(Call(Sys::kSend, fd, user(), body.size()), body.size());
  EXPECT_EQ(client.TakeStream(*conn), body);
  EXPECT_EQ(Call(Sys::kClose, fd), 0u);
  EXPECT_EQ(Call(Sys::kClose, listener), 0u);
}

// --- Concurrency: rx/tx stress under the tsan preset -------------------------

TEST(NetConcurrencyTest, ConcurrentNicRxAndLoopbackTraffic) {
  hw::Machine machine;
  svaos::SvaOS svaos(machine);
  runtime::MetaPoolRuntime pools;
  NetStack stack(machine, svaos, &pools, /*safety_checks=*/true,
                 /*use_svaos=*/true);
  ASSERT_TRUE(stack.Boot().ok());
  constexpr unsigned kWorkers = 4;
  constexpr int kIters = 200;
  svaos.ConfigureCpus(kWorkers);

  // Worker 0 owns the NIC (the device model is single-threaded, like real
  // hardware behind one irq line): it injects wire datagrams and transmits
  // replies. Workers 1..3 hammer the loopback path on their own sockets.
  std::vector<int> sids(kWorkers);
  for (unsigned t = 0; t < kWorkers; ++t) {
    auto sid = stack.CreateSocket(SocketKind::kDatagram);
    ASSERT_TRUE(sid.ok());
    ASSERT_TRUE(stack.Bind(*sid, static_cast<uint16_t>(9100 + t)).ok());
    sids[t] = *sid;
  }
  uint64_t live_before = stack.skbs().live();
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      smp::ScopedCpu bind(t);
      if (t == 0) {
        LoopbackClient client(stack);
        std::vector<uint8_t> payload(64, 0xAB);
        for (int i = 0; i < kIters; ++i) {
          ASSERT_TRUE(client.SendDatagram(5000, 9100, payload).ok());
          auto slice = stack.RecvBegin(sids[0], 2048);
          ASSERT_TRUE(slice.ok());
          ASSERT_EQ(slice->len, payload.size());
          ASSERT_TRUE(stack.RecvFinish(*slice).ok());
          auto skb = stack.AllocTxSkb();
          ASSERT_TRUE(skb.ok());
          auto sent = stack.Send(sids[0], *skb, 32, kClientIp, 5000);
          ASSERT_TRUE(sent.ok());
        }
        ASSERT_EQ(client.TakeDatagrams().size(),
                  static_cast<size_t>(kIters));
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        auto skb = stack.AllocTxSkb();
        ASSERT_TRUE(skb.ok());
        auto sent = stack.Send(sids[t], *skb, 48, kServerIp,
                               static_cast<uint16_t>(9100 + t));
        ASSERT_TRUE(sent.ok());
        auto slice = stack.RecvBegin(sids[t], 2048);
        ASSERT_TRUE(slice.ok());
        ASSERT_EQ(slice->len, 48u);
        ASSERT_TRUE(stack.RecvFinish(*slice).ok());
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  // Every packet buffer went home: nothing leaked under contention.
  EXPECT_EQ(stack.skbs().live(), live_before);
  EXPECT_EQ(stack.stats().rx_delivered.load(),
            static_cast<uint64_t>(kWorkers) * kIters);
  EXPECT_EQ(stack.stats().rx_violations.load(), 0u);
  for (unsigned t = 0; t < kWorkers; ++t) {
    ASSERT_TRUE(stack.Close(sids[t]).ok());
  }
}

TEST(NetConcurrencyTest, ConcurrentKernelNetSyscalls) {
  hw::Machine machine(128ull << 20, 4096);
  kernel::KernelConfig config;
  config.mode = kernel::KernelMode::kSvaSafe;
  kernel::Kernel kernel(machine, config);
  ASSERT_TRUE(kernel.Boot().ok());
  constexpr unsigned kWorkers = 4;
  constexpr int kIters = 150;
  kernel.svaos().ConfigureCpus(kWorkers);
  const uint64_t base = kernel::kUserVirtualBase + 0x100000;
  for (unsigned t = 0; t < kWorkers; ++t) {
    std::vector<uint8_t> bytes(128, static_cast<uint8_t>(t + 1));
    ASSERT_TRUE(
        kernel.PokeUser(base + 16384 + t * 4096, bytes.data(), bytes.size())
            .ok());
  }
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&kernel, base, t] {
      smp::ScopedCpu bind(t);
      auto call = [&kernel](kernel::Sys n, uint64_t a0, uint64_t a1 = 0,
                            uint64_t a2 = 0, uint64_t a3 = 0) -> uint64_t {
        auto r = kernel.Syscall(n, a0, a1, a2, a3);
        EXPECT_TRUE(r.ok());
        if (!r.ok()) {
          return ~0ull;
        }
        EXPECT_LT(*r, 1ull << 32);  // No errno came back.
        return *r;
      };
      uint64_t fd = call(
          kernel::Sys::kSocket,
          static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
      uint16_t port = static_cast<uint16_t>(9200 + t);
      call(kernel::Sys::kBind, fd, port);
      uint64_t txbuf = base + 16384 + t * 4096;
      uint64_t rxbuf = txbuf + 2048;
      uint64_t dest = (static_cast<uint64_t>(kServerIp) << 16) | port;
      for (int i = 0; i < kIters; ++i) {
        ASSERT_EQ(call(kernel::Sys::kSend, fd, txbuf, 128, dest), 128u);
        ASSERT_EQ(call(kernel::Sys::kRecv, fd, rxbuf, 2048), 128u);
      }
      call(kernel::Sys::kClose, fd);
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(kernel.net()->stats().rx_violations.load(), 0u);
  EXPECT_EQ(kernel.net()->stats().loopback_frames.load(),
            static_cast<uint64_t>(kWorkers) * kIters);
}

}  // namespace
}  // namespace sva::net
