#include <gtest/gtest.h>

#include "src/safety/compiler.h"
#include "src/verifier/injector.h"
#include "src/verifier/typechecker.h"
#include "src/vir/bytecode.h"
#include "src/vir/parser.h"
#include "src/vir/printer.h"

namespace sva::verifier {
namespace {

// A kernel-flavoured module with several metapools, pointer nesting, and
// checks — rich enough that every bug kind has injection sites.
constexpr const char* kRichKernel = R"(
module "richk"
%inode = type { i64, i64, i8* }
%dentry = type { %inode*, i64 }

declare i8* @kmalloc(i64)
declare void @kfree(i8*)

global @root_inode : %inode
global @name_table : [8 x i8*]

define %inode* @alloc_inode() {
entry:
  %raw = call i8* @kmalloc(i64 24)
  %i = bitcast i8* %raw to %inode*
  ret %inode* %i
}
define %dentry* @alloc_dentry(%inode* %ino) {
entry:
  %raw = call i8* @kmalloc(i64 16)
  %d = bitcast i8* %raw to %dentry*
  %slot = getelementptr %dentry* %d, i64 0, i32 0
  store %inode* %ino, %inode** %slot
  ret %dentry* %d
}
define i64 @read_size(%dentry* %d) {
entry:
  %slot = getelementptr %dentry* %d, i64 0, i32 0
  %ino = load %inode*, %inode** %slot
  %szp = getelementptr %inode* %ino, i64 0, i32 0
  %sz = load i64, i64* %szp
  ret i64 %sz
}
define void @drive(i64 %n) {
entry:
  %ino = call %inode* @alloc_inode()
  %d = call %dentry* @alloc_dentry(%inode* %ino)
  %sz = call i64 @read_size(%dentry* %d)
  %szp = getelementptr %inode* %ino, i64 0, i32 0
  store i64 %n, i64* %szp
  %dc = bitcast %dentry* %d to i8*
  call void @kfree(i8* %dc)
  %ic = bitcast %inode* %ino to i8*
  call void @kfree(i8* %ic)
  ret void
}
)";

std::unique_ptr<vir::Module> CompiledModule() {
  auto m = vir::ParseModule(kRichKernel);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  auto r = safety::RunSafetyCompiler(**m);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(m).value();
}

TEST(TypeCheckerTest, AcceptsCompilerOutput) {
  auto m = CompiledModule();
  TypeCheckResult result = TypeCheckModule(*m);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
}

TEST(TypeCheckerTest, AcceptsUnannotatedModules) {
  auto m = vir::ParseModule(kRichKernel);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(TypeCheckModule(**m).ok);
}

TEST(TypeCheckerTest, RejectsUndeclaredPool) {
  auto m = CompiledModule();
  vir::Function* fn = m->GetFunction("read_size");
  m->AnnotateValue(fn->arg(0), "MP_undeclared");
  EXPECT_FALSE(TypeCheckModule(*m).ok);
}

TEST(TypeCheckerTest, CollectAllGathersMultipleErrors) {
  auto m = CompiledModule();
  ASSERT_TRUE(InjectBug(*m, BugKind::kWrongAlias, 1).ok());
  ASSERT_TRUE(InjectBug(*m, BugKind::kFalseTypeHomogeneity, 2).ok());
  TypeCheckOptions options;
  options.collect_all = true;
  TypeCheckResult result = TypeCheckModule(*m, options);
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.errors.size(), 2u);
}

// The Section 5 experiment: 4 bug kinds x 5 seeds = 20 injected pointer
// analysis bugs; the type checker must catch every one of them.
class InjectionTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(InjectionTest, VerifierCatchesInjectedBug) {
  auto [kind_index, seed] = GetParam();
  BugKind kind = static_cast<BugKind>(kind_index);
  auto m = CompiledModule();
  ASSERT_TRUE(TypeCheckModule(*m).ok);
  Status injected = InjectBug(*m, kind, seed);
  ASSERT_TRUE(injected.ok())
      << BugKindName(kind) << ": " << injected.ToString();
  TypeCheckResult result = TypeCheckModule(*m);
  EXPECT_FALSE(result.ok) << "verifier missed " << BugKindName(kind)
                          << " with seed " << seed << "\n"
                          << vir::PrintModule(*m);
}

INSTANTIATE_TEST_SUITE_P(
    TwentyBugs, InjectionTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));


// The Section 9 extension: a security policy (information flow) encoded as
// a metapool type qualifier and enforced by the same local typing rules.
TEST(TypeCheckerTest, InformationFlowQualifier) {
  constexpr const char* kFlow = R"(
module "flow"
%key = type { i64, i64 }

metapool MPsecret th %key complete classified
metapool MPsbox complete classified
metapool MPpub complete

global @key_slot : %key* !MPsbox
global @log_slot : %key* !MPpub

define void @ok(%key* %k !MPsecret) {
entry:
  store %key* %k, %key** @key_slot
  ret void
}
)";
  auto m = vir::ParseModule(kFlow);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  // Pointee annotations: key_slot holds MPsecret pointers.
  vir::GlobalVariable* key_slot = (*m)->GetGlobal("key_slot");
  vir::GlobalVariable* log_slot = (*m)->GetGlobal("log_slot");
  ASSERT_NE(key_slot, nullptr);
  ASSERT_NE(log_slot, nullptr);
  EXPECT_TRUE((*m)->FindMetapool("MPsecret")->classified);
  EXPECT_FALSE((*m)->FindMetapool("MPpub")->classified);
  EXPECT_TRUE(TypeCheckModule(**m).ok);

  // Now add a leak: the classified key pointer stored through a public
  // pool's object.
  constexpr const char* kLeak = R"(
module "leak"
%key = type { i64, i64 }

metapool MPsecret th %key complete classified
metapool MPpub complete

global @log_slot : %key* !MPpub

define void @leak(%key* %k !MPsecret) {
entry:
  store %key* %k, %key** @log_slot
  ret void
}
)";
  auto leak = vir::ParseModule(kLeak);
  ASSERT_TRUE(leak.ok()) << leak.status().ToString();
  TypeCheckResult result = TypeCheckModule(**leak);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.errors.front().find("information-flow"),
            std::string::npos)
      << result.errors.front();
}

TEST(TypeCheckerTest, ClassifiedQualifierSurvivesBytecode) {
  constexpr const char* kFlow = R"(
module "flowbc"
metapool MPsecret classified
define void @nop() {
entry:
  ret void
}
)";
  auto m = vir::ParseModule(kFlow);
  ASSERT_TRUE(m.ok());
  auto round = vir::ReadBytecode(vir::WriteBytecode(**m));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const vir::MetapoolDecl* decl = (*round)->FindMetapool("MPsecret");
  ASSERT_NE(decl, nullptr);
  EXPECT_TRUE(decl->classified);
}

}  // namespace
}  // namespace sva::verifier
