// Tests for the SMP primitives (src/smp): spinlocks, per-CPU containers,
// the virtual multiprocessor's per-CPU SVA-OS state, and the epoch-based
// reclamation domain plus its kernel integration (lock-free fd/path reads
// racing writer churn — see docs/CONCURRENCY.md §5).
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/kernel/kernel.h"
#include "src/smp/epoch.h"
#include "src/smp/lock_order.h"
#include "src/smp/percpu.h"
#include "src/smp/sync.h"
#include "src/smp/vcpu.h"

namespace sva::smp {
namespace {

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  uint64_t counter = 0;  // Deliberately non-atomic: the lock is the guard.
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kIncrements = 20000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (uint64_t i = 0; i < kIncrements; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SpinLockTest, TryLockFailsWhileHeld) {
  SpinLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(PerCpuTest, BindingSelectsSlot) {
  PerCpu<int> slots;
  {
    ScopedCpu bind(3);
    EXPECT_EQ(current_cpu_id(), 3u);
    slots.Current() = 42;
  }
  EXPECT_EQ(current_cpu_id(), 0u);  // Binding is scoped.
  EXPECT_EQ(slots.ForCpu(3), 42);
  EXPECT_EQ(slots.ForCpu(0), 0);
}

TEST(PerCpuTest, BindingClampsToMaxCpus) {
  ScopedCpu bind(kMaxCpus + 5);
  EXPECT_EQ(current_cpu_id(), kMaxCpus - 1);
}

TEST(ShardedCounterTest, SumsAcrossConcurrentShards) {
  ShardedCounter counter;
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kAdds = 10000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, t] {
      ScopedCpu bind(t);
      for (uint64_t i = 0; i < kAdds; ++i) {
        counter.Add();
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kAdds);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

class VcpuTest : public ::testing::Test {
 protected:
  hw::Machine machine_{1 << 20, 256};
};

TEST_F(VcpuTest, BootCpuAliasesMachineCpu) {
  VirtualMultiprocessor vmp(machine_.cpu());
  ASSERT_EQ(vmp.num_cpus(), 1u);
  // Writes through vCPU 0 are writes to the machine's boot CPU: single-CPU
  // behaviour is unchanged by the SMP layer.
  vmp.cpu(0).cpu().control().pc = 0x1234;
  EXPECT_EQ(machine_.cpu().control().pc, 0x1234u);
}

TEST_F(VcpuTest, ConfigureClonesBootControlState) {
  machine_.cpu().control().page_table_base = 0xBEEF000;
  VirtualMultiprocessor vmp(machine_.cpu());
  vmp.Configure(4);
  ASSERT_EQ(vmp.num_cpus(), 4u);
  for (unsigned id = 1; id < 4; ++id) {
    EXPECT_EQ(vmp.cpu(id).cpu().control().page_table_base, 0xBEEF000u)
        << "AP " << id << " did not copy the boot control state";
    EXPECT_NE(&vmp.cpu(id).cpu(), &machine_.cpu());
  }
}

TEST_F(VcpuTest, CurrentFollowsThreadBinding) {
  VirtualMultiprocessor vmp(machine_.cpu());
  vmp.Configure(4);
  {
    ScopedCpu bind(2);
    EXPECT_EQ(vmp.Current().id(), 2u);
  }
  // Threads bound past the configured count share the last CPU.
  {
    ScopedCpu bind(9);
    EXPECT_EQ(vmp.Current().id(), 3u);
  }
}

TEST_F(VcpuTest, InterruptContextStackNests) {
  VirtualCpu vcpu(1);
  EXPECT_EQ(vcpu.icontext_depth(), 0u);
  InterruptContext* outer = vcpu.PushContext(7);
  InterruptContext* inner = vcpu.PushContext(8);
  EXPECT_EQ(vcpu.icontext_depth(), 2u);
  EXPECT_EQ(inner->id(), 8u);
  // Popping a non-innermost context is ignored (the SVA-OS contract: only
  // the innermost interrupt may return).
  vcpu.PopContext(outer);
  EXPECT_EQ(vcpu.icontext_depth(), 2u);
  vcpu.PopContext(inner);
  vcpu.PopContext(outer);
  EXPECT_EQ(vcpu.icontext_depth(), 0u);
}

// Forces the lock-order checker on (or off) for one test and restores the
// build-default afterwards, so the suite behaves the same under every
// CMake configuration (tier-1 is RelWithDebInfo, where the compile-time
// default is off).
class LockOrderTest : public ::testing::Test {
 protected:
  void TearDown() override {
    LockOrderChecker::set_enabled(LockOrderChecker::kEnabledByDefault);
  }
};

TEST_F(LockOrderTest, InOrderAcquisitionsPass) {
  LockOrderChecker::set_enabled(true);
  OrderedSpinLock bkl(LockRank::kBkl);
  OrderedSpinLock vfs(LockRank::kVfs);
  OrderedSpinLock files(LockRank::kFiles);
  uint64_t before = LockOrderChecker::acquisitions_checked();
  bkl.lock();
  vfs.lock();
  files.lock();
  EXPECT_EQ(LockOrderChecker::held_depth(), 3);
  EXPECT_EQ(LockOrderChecker::acquisitions_checked(), before + 3);
  files.unlock();
  vfs.unlock();
  bkl.unlock();
  EXPECT_EQ(LockOrderChecker::held_depth(), 0);
}

TEST_F(LockOrderTest, OutOfOrderReleaseTolerated) {
  LockOrderChecker::set_enabled(true);
  OrderedSpinLock vfs(LockRank::kVfs);
  OrderedSpinLock files(LockRank::kFiles);
  vfs.lock();
  files.lock();
  vfs.unlock();  // Non-LIFO release is legal; only acquisition order is.
  EXPECT_EQ(LockOrderChecker::held_depth(), 1);
  files.unlock();
  EXPECT_EQ(LockOrderChecker::held_depth(), 0);
}

TEST_F(LockOrderTest, TryLockParticipates) {
  LockOrderChecker::set_enabled(true);
  OrderedSpinLock pipes(LockRank::kPipes);
  ASSERT_TRUE(pipes.try_lock());
  EXPECT_EQ(LockOrderChecker::held_depth(), 1);
  EXPECT_FALSE(pipes.try_lock());  // Contended try_lock records nothing.
  EXPECT_EQ(LockOrderChecker::held_depth(), 1);
  pipes.unlock();
  EXPECT_EQ(LockOrderChecker::held_depth(), 0);
}

TEST_F(LockOrderTest, InversionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        LockOrderChecker::set_enabled(true);
        OrderedSpinLock vfs(LockRank::kVfs);
        OrderedSpinLock files(LockRank::kFiles);
        files.lock();
        vfs.lock();  // files (50) held while acquiring vfs (10): inversion.
      },
      "lock-order violation");
}

TEST_F(LockOrderTest, RecursiveAcquisitionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        LockOrderChecker::set_enabled(true);
        OrderedSpinLock tasks(LockRank::kTasks);
        OrderedSpinLock tasks2(LockRank::kTasks);
        tasks.lock();
        tasks2.lock();  // Equal rank counts as an inversion (no recursion).
      },
      "lock-order violation");
}

TEST_F(LockOrderTest, DisabledCheckerRecordsNothing) {
  LockOrderChecker::set_enabled(false);
  OrderedSpinLock vfs(LockRank::kVfs);
  OrderedSpinLock files(LockRank::kFiles);
  uint64_t before = LockOrderChecker::acquisitions_checked();
  // The inverted acquisition pattern is harmless while disabled: two
  // distinct locks, no blocking, and no bookkeeping.
  files.lock();
  vfs.lock();
  vfs.unlock();
  files.unlock();
  EXPECT_EQ(LockOrderChecker::acquisitions_checked(), before);
  EXPECT_EQ(LockOrderChecker::held_depth(), 0);
}

TEST_F(LockOrderTest, BuildDefaultMatchesCompileMode) {
#ifdef NDEBUG
  EXPECT_FALSE(LockOrderChecker::kEnabledByDefault);
#else
  EXPECT_TRUE(LockOrderChecker::kEnabledByDefault);
#endif
}

TEST_F(VcpuTest, StatsAggregateAcrossCpus) {
  VirtualMultiprocessor vmp(machine_.cpu());
  vmp.Configure(3);
  vmp.cpu(0).stats().syscalls_dispatched = 5;
  vmp.cpu(1).stats().syscalls_dispatched = 7;
  vmp.cpu(2).stats().save_integer = 2;
  SvaOsStats total = vmp.AggregateStats();
  EXPECT_EQ(total.syscalls_dispatched, 12u);
  EXPECT_EQ(total.save_integer, 2u);
  vmp.ResetStats();
  EXPECT_EQ(vmp.AggregateStats().syscalls_dispatched, 0u);
}

// --- Epoch-based reclamation: domain unit tests ------------------------------

TEST(EpochDomainTest, GracePeriodSpansTwoAdvances) {
  EpochDomain& d = EpochDomain::Global();
  ScopedCpu bind(0);
  std::atomic<bool> freed{false};
  int slot = d.Pin();
  d.Retire([&freed] { freed.store(true); });
  // The first advance may succeed — the pinned slot observed the retire
  // epoch E — but the retiree needs E+2, so it must not be reclaimed.
  d.TryAdvance();
  EXPECT_FALSE(freed.load());
  // No further advance while the reader still sits pinned in epoch E.
  EXPECT_FALSE(d.TryAdvance());
  EXPECT_FALSE(freed.load());
  d.Unpin(slot);
  d.Synchronize();
  EXPECT_TRUE(freed.load());
}

TEST(EpochDomainTest, PinnedReadersGaugeCountsNestedGuards) {
  EpochDomain& d = EpochDomain::Global();
  ScopedCpu bind(0);
  const uint64_t base = d.pinned_readers();
  {
    EpochGuard outer;
    EXPECT_EQ(d.pinned_readers(), base + 1);
    {
      EpochGuard inner;
      EXPECT_EQ(d.pinned_readers(), base + 2);
    }
    EXPECT_EQ(d.pinned_readers(), base + 1);
  }
  EXPECT_EQ(d.pinned_readers(), base);
}

TEST(EpochDomainTest, CountersBalanceAtQuiesce) {
  EpochDomain& d = EpochDomain::Global();
  ScopedCpu bind(0);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    d.Retire([&ran] { ran.fetch_add(1); });
  }
  d.Synchronize();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(d.pending(), 0u);
  EXPECT_EQ(d.retired(), d.reclaimed());
  EXPECT_EQ(d.pinned_readers(), 0u);
}

TEST(EpochDomainTest, RetireDeleteFreesAfterGracePeriod) {
  EpochDomain& d = EpochDomain::Global();
  ScopedCpu bind(0);
  struct Flagged {
    explicit Flagged(std::atomic<bool>* f) : flag(f) {}
    ~Flagged() { flag->store(true); }
    std::atomic<bool>* flag;
  };
  std::atomic<bool> destroyed{false};
  RetireDelete(new Flagged(&destroyed));
  EXPECT_FALSE(destroyed.load());  // Never freed inline.
  d.Synchronize();
  EXPECT_TRUE(destroyed.load());
}

// --- Epoch-based reclamation: kernel torture ---------------------------------

// Boots a SVA-Safe kernel for the epoch torture battery (the same harness
// shape as kernel_stress_test's, local to this binary).
class EpochKernelHarness {
 public:
  EpochKernelHarness() : machine_(512ull << 20) {
    kernel::KernelConfig config;
    config.mode = kernel::KernelMode::kSvaSafe;
    kernel_ = std::make_unique<kernel::Kernel>(machine_, config);
    EXPECT_TRUE(kernel_->Boot().ok());
  }

  kernel::Kernel& k() { return *kernel_; }
  uint64_t user(uint64_t offset = 0) {
    return kernel::kUserVirtualBase +
           static_cast<uint64_t>(kernel_->current_pid()) * 0x100000 + offset;
  }
  // Syscall that must succeed (no racing writer can invalidate it).
  uint64_t Call(kernel::Sys n, uint64_t a0 = 0, uint64_t a1 = 0,
                uint64_t a2 = 0) {
    auto r = kernel_->Syscall(n, a0, a1, a2);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ~uint64_t{0};
  }

  hw::Machine machine_;
  std::unique_ptr<kernel::Kernel> kernel_;
};

constexpr uint64_t kEBadFValue = static_cast<uint64_t>(-9);

// N reader threads spin the epoch-protected fast paths (fd lookup via
// SEEK_CUR lseek, path walk via stat, task lookup via getpid) while writer
// threads churn the very structures they read: open/close/dup/unlink and
// the metapool registry growth that rides on file writes. The assertions:
// no use-after-reclaim (no crash, zero false-positive safety checks), and
// the retire/reclaim counters balance once everything quiesces.
TEST(EpochTortureTest, ReadersSurviveWriterChurn) {
  EpochKernelHarness h;
  constexpr int kReaders = 3;
  constexpr int kWriters = 2;
  constexpr int kReaderRounds = 2000;
  constexpr int kWriterRounds = 300;

  EpochDomain& d = EpochDomain::Global();
  const uint64_t reclaimed_before = d.reclaimed();

  // Per-reader file + pre-poked stat path (pages faulted in up front so the
  // reader loop never takes the address-space fault path).
  uint64_t reader_fds[kReaders];
  uint64_t reader_paths[kReaders];
  std::vector<char> payload(512, 'e');
  for (int t = 0; t < kReaders; ++t) {
    std::string path = "/epoch/r" + std::to_string(t);
    reader_paths[t] = h.user(16384 + static_cast<uint64_t>(t) * 128);
    ASSERT_TRUE(h.k().PokeUserString(reader_paths[t], path).ok());
    ASSERT_TRUE(h.k().PokeUserString(h.user(0), path).ok());
    reader_fds[t] = h.Call(kernel::Sys::kOpen, h.user(0), 1);
    ASSERT_TRUE(
        h.k().PokeUser(h.user(4096), payload.data(), payload.size()).ok());
    ASSERT_EQ(h.Call(kernel::Sys::kWrite, reader_fds[t], h.user(4096),
                     payload.size()),
              payload.size());
  }
  // Per-writer churn path.
  uint64_t writer_paths[kWriters];
  for (int t = 0; t < kWriters; ++t) {
    std::string path = "/epoch/w" + std::to_string(t);
    writer_paths[t] = h.user(24576 + static_cast<uint64_t>(t) * 128);
    ASSERT_TRUE(h.k().PokeUserString(writer_paths[t], path).ok());
  }

  h.k().svaos().ConfigureCpus(kReaders + kWriters);
  std::vector<std::thread> workers;
  for (int t = 0; t < kReaders; ++t) {
    workers.emplace_back([&h, &reader_fds, &reader_paths, t] {
      ScopedCpu bind(static_cast<unsigned>(t));
      for (int round = 0; round < kReaderRounds; ++round) {
        h.Call(kernel::Sys::kStat, reader_paths[t], h.user(32768));
        h.Call(kernel::Sys::kLseek, reader_fds[t], 0, 1);  // SEEK_CUR probe.
        h.Call(kernel::Sys::kGetPid);
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&h, &writer_paths, t] {
      ScopedCpu bind(static_cast<unsigned>(kReaders + t));
      for (int round = 0; round < kWriterRounds; ++round) {
        uint64_t fd = h.Call(kernel::Sys::kOpen, writer_paths[t], 1);
        h.Call(kernel::Sys::kWrite, fd, writer_paths[t], 64);
        uint64_t dup = h.Call(kernel::Sys::kDup, fd);
        h.Call(kernel::Sys::kClose, dup);
        h.Call(kernel::Sys::kClose, fd);
        if (round % 4 == 3) {
          h.Call(kernel::Sys::kUnlink, writer_paths[t]);
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  // No use-after-reclaim surfaced as a safety violation or a crash.
  EXPECT_EQ(h.k().pools().stats().total_failed(), 0u);
  EXPECT_TRUE(h.k().pools().violations().empty());

  // Quiesce: all workers joined, so nothing is pinned; every retiree from
  // the churn must drain and the counters must balance.
  d.Synchronize();
  EXPECT_GT(d.reclaimed(), reclaimed_before) << "churn retired nothing?";
  EXPECT_EQ(d.pending(), 0u);
  EXPECT_EQ(d.retired(), d.reclaimed());
  EXPECT_EQ(d.pinned_readers(), 0u);
}

// The lock-freedom half of the torture contract: with the lock-order
// checker counting acquisitions, a window of pure reads (stat + SEEK_CUR
// lseek + getpid) must acquire files_lock_ and vfs_lock_ exactly zero
// times — the fast paths resolve fds and paths under epoch protection only.
TEST(EpochTortureTest, ReadFastPathsTakeNoSharedLocks) {
  EpochKernelHarness h;
  uint64_t path_addr = h.user(16384);
  ASSERT_TRUE(h.k().PokeUserString(path_addr, "/epoch/lockfree").ok());
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/epoch/lockfree").ok());
  uint64_t fd = h.Call(kernel::Sys::kOpen, h.user(0), 1);
  ASSERT_TRUE(h.k().PokeUser(h.user(4096), "x", 1).ok());
  ASSERT_EQ(h.Call(kernel::Sys::kWrite, fd, h.user(4096), 1), 1u);
  // Prime the read paths once so any lazy page faults happen outside the
  // counted window.
  h.Call(kernel::Sys::kStat, path_addr, h.user(32768));
  h.Call(kernel::Sys::kLseek, fd, 0, 1);

  const bool was_enabled = LockOrderChecker::enabled();
  LockOrderChecker::set_enabled(true);
  const uint64_t files_before = LockOrderChecker::acquisitions_of(
      LockRank::kFiles);
  const uint64_t vfs_before = LockOrderChecker::acquisitions_of(LockRank::kVfs);
  for (int round = 0; round < 500; ++round) {
    h.Call(kernel::Sys::kStat, path_addr, h.user(32768));
    h.Call(kernel::Sys::kLseek, fd, 0, 1);
    h.Call(kernel::Sys::kGetPid);
  }
  const uint64_t files_after = LockOrderChecker::acquisitions_of(
      LockRank::kFiles);
  const uint64_t vfs_after = LockOrderChecker::acquisitions_of(LockRank::kVfs);
  LockOrderChecker::set_enabled(was_enabled);
  EXPECT_EQ(files_after, files_before)
      << "an fd-read path fell back onto files_lock_";
  EXPECT_EQ(vfs_after, vfs_before)
      << "a path-lookup or offset-read path fell back onto vfs_lock_";
}

// The publish-then-retire regression: a close (or dup/close) racing a
// reader resolving the same fd must yield either the old file (the reader
// pinned before the slot was cleared) or a clean kEBadF — never a torn
// slot, a crash, or a use-after-reclaim.
TEST(EpochTortureTest, CloseDuringReadYieldsOldFileOrEbadf) {
  EpochKernelHarness h;
  constexpr int kRounds = 1500;
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/epoch/race").ok());
  uint64_t fd = h.Call(kernel::Sys::kOpen, h.user(0), 1);
  ASSERT_TRUE(h.k().PokeUser(h.user(4096), "y", 1).ok());
  ASSERT_EQ(h.Call(kernel::Sys::kWrite, fd, h.user(4096), 1), 1u);

  h.k().svaos().ConfigureCpus(2);
  std::atomic<bool> stop{false};
  std::thread reader([&h, &stop, fd] {
    ScopedCpu bind(0);
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = h.k().Syscall(kernel::Sys::kLseek, fd, 0, 1);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      // Old file: a non-negative offset. Concurrently closed: kEBadF.
      ASSERT_TRUE(*r == kEBadFValue || static_cast<int64_t>(*r) >= 0)
          << "torn fd slot: lseek returned " << static_cast<int64_t>(*r);
    }
  });
  {
    ScopedCpu bind(1);
    for (int round = 0; round < kRounds; ++round) {
      // Reopen lands on the lowest free slot — the one just closed — so the
      // reader keeps probing a slot that flips between live and dead.
      uint64_t dup = h.Call(kernel::Sys::kDup, fd);
      ASSERT_EQ(h.Call(kernel::Sys::kClose, fd), 0u);
      ASSERT_EQ(h.Call(kernel::Sys::kClose, dup), 0u);
      auto reopened = h.k().Syscall(kernel::Sys::kOpen, h.user(0), 1);
      ASSERT_TRUE(reopened.ok());
      fd = *reopened;
    }
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(h.k().pools().stats().total_failed(), 0u);
}

// The check_epoch_reclaim ctest gate runs the torture battery plus this
// test in one process: after a self-contained churn (so the test also holds
// in isolation), the domain must show real reclamation and no reader left
// pinned — the wired-up equivalent of asserting sva_epoch_reclaimed_total
// > 0 and sva_epoch_pinned_readers == 0 on /metrics.
TEST(EpochReclaimGateTest, ChurnReclaimsAndNothingStaysPinned) {
  EpochDomain& d = EpochDomain::Global();
  const uint64_t reclaimed_before = d.reclaimed();
  {
    EpochKernelHarness h;
    ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/epoch/gate").ok());
    for (int round = 0; round < 64; ++round) {
      uint64_t fd = h.Call(kernel::Sys::kOpen, h.user(0), 1);
      h.Call(kernel::Sys::kWrite, fd, h.user(0), 16);
      h.Call(kernel::Sys::kClose, fd);
      if (round % 4 == 3) {
        h.Call(kernel::Sys::kUnlink, h.user(0));
      }
    }
    // ~Kernel synchronizes the domain before its allocators die.
  }
  EXPECT_GT(d.reclaimed(), reclaimed_before);
  EXPECT_EQ(d.pending(), 0u);
  EXPECT_EQ(d.pinned_readers(), 0u);
}

}  // namespace
}  // namespace sva::smp
