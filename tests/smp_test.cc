// Tests for the SMP primitives (src/smp): spinlocks, per-CPU containers,
// and the virtual multiprocessor's per-CPU SVA-OS state.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/smp/percpu.h"
#include "src/smp/sync.h"
#include "src/smp/vcpu.h"

namespace sva::smp {
namespace {

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  uint64_t counter = 0;  // Deliberately non-atomic: the lock is the guard.
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kIncrements = 20000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (uint64_t i = 0; i < kIncrements; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SpinLockTest, TryLockFailsWhileHeld) {
  SpinLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(PerCpuTest, BindingSelectsSlot) {
  PerCpu<int> slots;
  {
    ScopedCpu bind(3);
    EXPECT_EQ(current_cpu_id(), 3u);
    slots.Current() = 42;
  }
  EXPECT_EQ(current_cpu_id(), 0u);  // Binding is scoped.
  EXPECT_EQ(slots.ForCpu(3), 42);
  EXPECT_EQ(slots.ForCpu(0), 0);
}

TEST(PerCpuTest, BindingClampsToMaxCpus) {
  ScopedCpu bind(kMaxCpus + 5);
  EXPECT_EQ(current_cpu_id(), kMaxCpus - 1);
}

TEST(ShardedCounterTest, SumsAcrossConcurrentShards) {
  ShardedCounter counter;
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kAdds = 10000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, t] {
      ScopedCpu bind(t);
      for (uint64_t i = 0; i < kAdds; ++i) {
        counter.Add();
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kAdds);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

class VcpuTest : public ::testing::Test {
 protected:
  hw::Machine machine_{1 << 20, 256};
};

TEST_F(VcpuTest, BootCpuAliasesMachineCpu) {
  VirtualMultiprocessor vmp(machine_.cpu());
  ASSERT_EQ(vmp.num_cpus(), 1u);
  // Writes through vCPU 0 are writes to the machine's boot CPU: single-CPU
  // behaviour is unchanged by the SMP layer.
  vmp.cpu(0).cpu().control().pc = 0x1234;
  EXPECT_EQ(machine_.cpu().control().pc, 0x1234u);
}

TEST_F(VcpuTest, ConfigureClonesBootControlState) {
  machine_.cpu().control().page_table_base = 0xBEEF000;
  VirtualMultiprocessor vmp(machine_.cpu());
  vmp.Configure(4);
  ASSERT_EQ(vmp.num_cpus(), 4u);
  for (unsigned id = 1; id < 4; ++id) {
    EXPECT_EQ(vmp.cpu(id).cpu().control().page_table_base, 0xBEEF000u)
        << "AP " << id << " did not copy the boot control state";
    EXPECT_NE(&vmp.cpu(id).cpu(), &machine_.cpu());
  }
}

TEST_F(VcpuTest, CurrentFollowsThreadBinding) {
  VirtualMultiprocessor vmp(machine_.cpu());
  vmp.Configure(4);
  {
    ScopedCpu bind(2);
    EXPECT_EQ(vmp.Current().id(), 2u);
  }
  // Threads bound past the configured count share the last CPU.
  {
    ScopedCpu bind(9);
    EXPECT_EQ(vmp.Current().id(), 3u);
  }
}

TEST_F(VcpuTest, InterruptContextStackNests) {
  VirtualCpu vcpu(1);
  EXPECT_EQ(vcpu.icontext_depth(), 0u);
  InterruptContext* outer = vcpu.PushContext(7);
  InterruptContext* inner = vcpu.PushContext(8);
  EXPECT_EQ(vcpu.icontext_depth(), 2u);
  EXPECT_EQ(inner->id(), 8u);
  // Popping a non-innermost context is ignored (the SVA-OS contract: only
  // the innermost interrupt may return).
  vcpu.PopContext(outer);
  EXPECT_EQ(vcpu.icontext_depth(), 2u);
  vcpu.PopContext(inner);
  vcpu.PopContext(outer);
  EXPECT_EQ(vcpu.icontext_depth(), 0u);
}

TEST_F(VcpuTest, StatsAggregateAcrossCpus) {
  VirtualMultiprocessor vmp(machine_.cpu());
  vmp.Configure(3);
  vmp.cpu(0).stats().syscalls_dispatched = 5;
  vmp.cpu(1).stats().syscalls_dispatched = 7;
  vmp.cpu(2).stats().save_integer = 2;
  SvaOsStats total = vmp.AggregateStats();
  EXPECT_EQ(total.syscalls_dispatched, 12u);
  EXPECT_EQ(total.save_integer, 2u);
  vmp.ResetStats();
  EXPECT_EQ(vmp.AggregateStats().syscalls_dispatched, 0u);
}

}  // namespace
}  // namespace sva::smp
