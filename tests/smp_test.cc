// Tests for the SMP primitives (src/smp): spinlocks, per-CPU containers,
// and the virtual multiprocessor's per-CPU SVA-OS state.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/smp/lock_order.h"
#include "src/smp/percpu.h"
#include "src/smp/sync.h"
#include "src/smp/vcpu.h"

namespace sva::smp {
namespace {

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  uint64_t counter = 0;  // Deliberately non-atomic: the lock is the guard.
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kIncrements = 20000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (uint64_t i = 0; i < kIncrements; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SpinLockTest, TryLockFailsWhileHeld) {
  SpinLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(PerCpuTest, BindingSelectsSlot) {
  PerCpu<int> slots;
  {
    ScopedCpu bind(3);
    EXPECT_EQ(current_cpu_id(), 3u);
    slots.Current() = 42;
  }
  EXPECT_EQ(current_cpu_id(), 0u);  // Binding is scoped.
  EXPECT_EQ(slots.ForCpu(3), 42);
  EXPECT_EQ(slots.ForCpu(0), 0);
}

TEST(PerCpuTest, BindingClampsToMaxCpus) {
  ScopedCpu bind(kMaxCpus + 5);
  EXPECT_EQ(current_cpu_id(), kMaxCpus - 1);
}

TEST(ShardedCounterTest, SumsAcrossConcurrentShards) {
  ShardedCounter counter;
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kAdds = 10000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, t] {
      ScopedCpu bind(t);
      for (uint64_t i = 0; i < kAdds; ++i) {
        counter.Add();
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kAdds);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

class VcpuTest : public ::testing::Test {
 protected:
  hw::Machine machine_{1 << 20, 256};
};

TEST_F(VcpuTest, BootCpuAliasesMachineCpu) {
  VirtualMultiprocessor vmp(machine_.cpu());
  ASSERT_EQ(vmp.num_cpus(), 1u);
  // Writes through vCPU 0 are writes to the machine's boot CPU: single-CPU
  // behaviour is unchanged by the SMP layer.
  vmp.cpu(0).cpu().control().pc = 0x1234;
  EXPECT_EQ(machine_.cpu().control().pc, 0x1234u);
}

TEST_F(VcpuTest, ConfigureClonesBootControlState) {
  machine_.cpu().control().page_table_base = 0xBEEF000;
  VirtualMultiprocessor vmp(machine_.cpu());
  vmp.Configure(4);
  ASSERT_EQ(vmp.num_cpus(), 4u);
  for (unsigned id = 1; id < 4; ++id) {
    EXPECT_EQ(vmp.cpu(id).cpu().control().page_table_base, 0xBEEF000u)
        << "AP " << id << " did not copy the boot control state";
    EXPECT_NE(&vmp.cpu(id).cpu(), &machine_.cpu());
  }
}

TEST_F(VcpuTest, CurrentFollowsThreadBinding) {
  VirtualMultiprocessor vmp(machine_.cpu());
  vmp.Configure(4);
  {
    ScopedCpu bind(2);
    EXPECT_EQ(vmp.Current().id(), 2u);
  }
  // Threads bound past the configured count share the last CPU.
  {
    ScopedCpu bind(9);
    EXPECT_EQ(vmp.Current().id(), 3u);
  }
}

TEST_F(VcpuTest, InterruptContextStackNests) {
  VirtualCpu vcpu(1);
  EXPECT_EQ(vcpu.icontext_depth(), 0u);
  InterruptContext* outer = vcpu.PushContext(7);
  InterruptContext* inner = vcpu.PushContext(8);
  EXPECT_EQ(vcpu.icontext_depth(), 2u);
  EXPECT_EQ(inner->id(), 8u);
  // Popping a non-innermost context is ignored (the SVA-OS contract: only
  // the innermost interrupt may return).
  vcpu.PopContext(outer);
  EXPECT_EQ(vcpu.icontext_depth(), 2u);
  vcpu.PopContext(inner);
  vcpu.PopContext(outer);
  EXPECT_EQ(vcpu.icontext_depth(), 0u);
}

// Forces the lock-order checker on (or off) for one test and restores the
// build-default afterwards, so the suite behaves the same under every
// CMake configuration (tier-1 is RelWithDebInfo, where the compile-time
// default is off).
class LockOrderTest : public ::testing::Test {
 protected:
  void TearDown() override {
    LockOrderChecker::set_enabled(LockOrderChecker::kEnabledByDefault);
  }
};

TEST_F(LockOrderTest, InOrderAcquisitionsPass) {
  LockOrderChecker::set_enabled(true);
  OrderedSpinLock bkl(LockRank::kBkl);
  OrderedSpinLock vfs(LockRank::kVfs);
  OrderedSpinLock files(LockRank::kFiles);
  uint64_t before = LockOrderChecker::acquisitions_checked();
  bkl.lock();
  vfs.lock();
  files.lock();
  EXPECT_EQ(LockOrderChecker::held_depth(), 3);
  EXPECT_EQ(LockOrderChecker::acquisitions_checked(), before + 3);
  files.unlock();
  vfs.unlock();
  bkl.unlock();
  EXPECT_EQ(LockOrderChecker::held_depth(), 0);
}

TEST_F(LockOrderTest, OutOfOrderReleaseTolerated) {
  LockOrderChecker::set_enabled(true);
  OrderedSpinLock vfs(LockRank::kVfs);
  OrderedSpinLock files(LockRank::kFiles);
  vfs.lock();
  files.lock();
  vfs.unlock();  // Non-LIFO release is legal; only acquisition order is.
  EXPECT_EQ(LockOrderChecker::held_depth(), 1);
  files.unlock();
  EXPECT_EQ(LockOrderChecker::held_depth(), 0);
}

TEST_F(LockOrderTest, TryLockParticipates) {
  LockOrderChecker::set_enabled(true);
  OrderedSpinLock pipes(LockRank::kPipes);
  ASSERT_TRUE(pipes.try_lock());
  EXPECT_EQ(LockOrderChecker::held_depth(), 1);
  EXPECT_FALSE(pipes.try_lock());  // Contended try_lock records nothing.
  EXPECT_EQ(LockOrderChecker::held_depth(), 1);
  pipes.unlock();
  EXPECT_EQ(LockOrderChecker::held_depth(), 0);
}

TEST_F(LockOrderTest, InversionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        LockOrderChecker::set_enabled(true);
        OrderedSpinLock vfs(LockRank::kVfs);
        OrderedSpinLock files(LockRank::kFiles);
        files.lock();
        vfs.lock();  // files (50) held while acquiring vfs (10): inversion.
      },
      "lock-order violation");
}

TEST_F(LockOrderTest, RecursiveAcquisitionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        LockOrderChecker::set_enabled(true);
        OrderedSpinLock tasks(LockRank::kTasks);
        OrderedSpinLock tasks2(LockRank::kTasks);
        tasks.lock();
        tasks2.lock();  // Equal rank counts as an inversion (no recursion).
      },
      "lock-order violation");
}

TEST_F(LockOrderTest, DisabledCheckerRecordsNothing) {
  LockOrderChecker::set_enabled(false);
  OrderedSpinLock vfs(LockRank::kVfs);
  OrderedSpinLock files(LockRank::kFiles);
  uint64_t before = LockOrderChecker::acquisitions_checked();
  // The inverted acquisition pattern is harmless while disabled: two
  // distinct locks, no blocking, and no bookkeeping.
  files.lock();
  vfs.lock();
  vfs.unlock();
  files.unlock();
  EXPECT_EQ(LockOrderChecker::acquisitions_checked(), before);
  EXPECT_EQ(LockOrderChecker::held_depth(), 0);
}

TEST_F(LockOrderTest, BuildDefaultMatchesCompileMode) {
#ifdef NDEBUG
  EXPECT_FALSE(LockOrderChecker::kEnabledByDefault);
#else
  EXPECT_TRUE(LockOrderChecker::kEnabledByDefault);
#endif
}

TEST_F(VcpuTest, StatsAggregateAcrossCpus) {
  VirtualMultiprocessor vmp(machine_.cpu());
  vmp.Configure(3);
  vmp.cpu(0).stats().syscalls_dispatched = 5;
  vmp.cpu(1).stats().syscalls_dispatched = 7;
  vmp.cpu(2).stats().save_integer = 2;
  SvaOsStats total = vmp.AggregateStats();
  EXPECT_EQ(total.syscalls_dispatched, 12u);
  EXPECT_EQ(total.save_integer, 2u);
  vmp.ResetStats();
  EXPECT_EQ(vmp.AggregateStats().syscalls_dispatched, 0u);
}

}  // namespace
}  // namespace sva::smp
