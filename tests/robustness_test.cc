// Robustness tests for the load-time trusted path: the bytecode reader and
// the parser must reject (never crash on) malformed input, and the full
// instruction set must survive print/parse/serialize round trips.
#include <gtest/gtest.h>

#include <random>

#include "src/runtime/metapool_runtime.h"
#include "src/svm/interp.h"
#include "src/vir/bytecode.h"
#include "src/vir/parser.h"
#include "src/vir/printer.h"
#include "src/vir/structural_verifier.h"

namespace sva::vir {
namespace {

// One module exercising every opcode of the instruction set.
constexpr const char* kEveryOpcode = R"(
module "every_opcode"
%node = type { i64, [2 x i32], %node* }

metapool MPX th %node complete user classified
targetset 0 = @callee

global @counter : i64 = 3
extern global @rom : [16 x i8]

declare i8* @kmalloc(i64)

define i64 @callee(i64 %x) {
entry:
  ret i64 %x
}

define f64 @float_ops(f64 %a, f64 %b) {
entry:
  %s = fadd f64 %a, %b
  %d = fsub f64 %s, 1.5
  %m = fmul f64 %d, %b
  %q = fdiv f64 %m, 2.0
  %c = fcmp ugt f64 %q, %a
  %sel = select i1 %c, f64 %q, f64 %a
  %i = fptosi f64 %sel to i64
  %back = sitofp i64 %i to f64
  ret f64 %back
}

define i64 @int_ops(i64 %a, i64 %b, i1 %c) {
entry:
  %v0 = add i64 %a, %b
  %v1 = sub i64 %v0, 1
  %v2 = mul i64 %v1, 3
  %v3 = udiv i64 %v2, 2
  %v4 = sdiv i64 %v3, 2
  %v5 = urem i64 %v4, 97
  %v6 = srem i64 %v5, 13
  %v7 = and i64 %v6, 255
  %v8 = or i64 %v7, 16
  %v9 = xor i64 %v8, 5
  %v10 = shl i64 %v9, 2
  %v11 = lshr i64 %v10, 1
  %v12 = ashr i64 %v11, 1
  %t = trunc i64 %v12 to i16
  %z = zext i16 %t to i64
  %sx = sext i16 %t to i64
  %p = inttoptr i64 %z to i8*
  %pi = ptrtoint i8* %p to i64
  %sel = select i1 %c, i64 %sx, i64 %pi
  %cmp = icmp sle i64 %sel, %a
  %r = zext i1 %cmp to i64
  ret i64 %r
}

define i64 @memory_ops(i64 %n) {
entry:
  %stackbuf = alloca i64, i64 4
  store i64 %n, i64* %stackbuf
  %heap = malloc %node, i64 1
  %field = getelementptr %node* %heap, i64 0, i32 1, i64 1
  store i32 7, i32* %field
  %old = atomiclis i64* %stackbuf, 2
  %swapped = cmpxchg i64* %stackbuf, %old, 99
  writebarrier
  %loaded = load i64, i64* %stackbuf
  free %node* %heap
  %sum = add i64 %loaded, %swapped
  ret i64 %sum
}

define i64 @control_ops(i64 %which) {
entry:
  switch i64 %which, label %default, [ 0, label %a ], [ 1, label %b ]
a:
  br label %join
b:
  %cond = icmp eq i64 %which, 1
  br i1 %cond, label %join, label %default
join:
  %phi = phi i64 [ 10, %a ], [ 20, %b ]
  %r = call i64 @callee(i64 %phi)
  ret i64 %r
default:
  unreachable
}
)";

TEST(RoundTripTest, EveryOpcodeSurvivesTextRoundTrip) {
  auto m1 = ParseModule(kEveryOpcode);
  ASSERT_TRUE(m1.ok()) << m1.status().ToString();
  ASSERT_TRUE(VerifyModule(**m1).ok()) << VerifyModule(**m1).ToString();
  std::string text1 = PrintModule(**m1);
  auto m2 = ParseModule(text1);
  ASSERT_TRUE(m2.ok()) << m2.status().ToString() << "\n" << text1;
  EXPECT_EQ(text1, PrintModule(**m2));
}

TEST(RoundTripTest, EveryOpcodeSurvivesBytecodeRoundTrip) {
  auto m1 = ParseModule(kEveryOpcode);
  ASSERT_TRUE(m1.ok());
  std::vector<uint8_t> bytes1 = WriteBytecode(**m1);
  auto m2 = ReadBytecode(bytes1);
  ASSERT_TRUE(m2.ok()) << m2.status().ToString();
  ASSERT_TRUE(VerifyModule(**m2).ok()) << VerifyModule(**m2).ToString();
  EXPECT_EQ(bytes1, WriteBytecode(**m2));
}

TEST(RoundTripTest, EveryOpcodeExecutesIdenticallyAfterRoundTrip) {
  auto m1 = ParseModule(kEveryOpcode);
  ASSERT_TRUE(m1.ok());
  auto m2 = ReadBytecode(WriteBytecode(**m1));
  ASSERT_TRUE(m2.ok());
  runtime::MetaPoolRuntime pools1, pools2;
  svm::Interpreter in1(**m1, pools1), in2(**m2, pools2);
  ASSERT_TRUE(in1.Initialize().ok());
  ASSERT_TRUE(in2.Initialize().ok());
  for (uint64_t arg : {0ull, 1ull, 2ull, 41ull, 1000ull}) {
    auto r1 = in1.Run("int_ops", {arg, arg + 3, arg % 2});
    auto r2 = in2.Run("int_ops", {arg, arg + 3, arg % 2});
    ASSERT_TRUE(r1.status.ok());
    ASSERT_TRUE(r2.status.ok());
    EXPECT_EQ(r1.value, r2.value) << "arg=" << arg;
  }
  for (uint64_t which : {0ull, 1ull}) {
    auto r1 = in1.Run("control_ops", {which});
    auto r2 = in2.Run("control_ops", {which});
    ASSERT_TRUE(r1.status.ok());
    EXPECT_EQ(r1.value, r2.value);
  }
  auto r1 = in1.Run("memory_ops", {5});
  auto r2 = in2.Run("memory_ops", {5});
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  EXPECT_EQ(r1.value, r2.value);
  // memory_ops: stackbuf 5 -> atomiclis returns 5 (now 7) -> cmpxchg(7 vs
  // old 5) fails, returns 7 -> loaded 7 ... wait cmpxchg expected=%old=5,
  // current is 7 -> no swap, returns 7; loaded = 7; sum = 14.
  EXPECT_EQ(r1.value, 14u);
}

// Fuzz the bytecode reader: single-byte corruptions of a valid image must
// either parse to some module or fail cleanly — never crash or hang.
class BytecodeFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BytecodeFuzzTest, SingleByteCorruptionNeverCrashes) {
  auto m = ParseModule(kEveryOpcode);
  ASSERT_TRUE(m.ok());
  std::vector<uint8_t> bytes = WriteBytecode(**m);
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<size_t> pos_dist(0, bytes.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> corrupted = bytes;
    size_t pos = pos_dist(rng);
    corrupted[pos] = static_cast<uint8_t>(byte_dist(rng));
    auto result = ReadBytecode(corrupted);  // Must return, never crash.
    if (result.ok()) {
      // If it parsed, the structural verifier must also terminate.
      (void)VerifyModule(**result);
    }
  }
}

TEST_P(BytecodeFuzzTest, TruncationNeverCrashes) {
  auto m = ParseModule(kEveryOpcode);
  ASSERT_TRUE(m.ok());
  std::vector<uint8_t> bytes = WriteBytecode(**m);
  std::mt19937 rng(GetParam() + 777);
  std::uniform_int_distribution<size_t> cut_dist(0, bytes.size());
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<long>(
                                                 cut_dist(rng)));
    (void)ReadBytecode(cut);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytecodeFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// Parser rejection sweep: every snippet is malformed in a distinct way and
// must produce a ParseError (with a line number), not a crash or success.
class ParserRejectTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRejectTest, MalformedInputRejectedCleanly) {
  auto result = vir::ParseModule(GetParam());
  ASSERT_FALSE(result.ok()) << "accepted malformed input";
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserRejectTest,
    ::testing::Values(
        "",                                      // No module header.
        "module",                                // Missing name.
        "module \"x\"\nbogus top level",         // Unknown top-level.
        "module \"x\"\n%t = type",               // Truncated type decl.
        "module \"x\"\n%t = type { i32",         // Unclosed struct.
        "module \"x\"\nglobal @g",               // Missing type.
        "module \"x\"\nglobal @g : i933",        // Bad int width.
        "module \"x\"\ndeclare @f()",            // Missing return type.
        "module \"x\"\ndefine i32 @f() {\n}",    // Body with no blocks.
        "module \"x\"\ndefine i32 @f() {\nentry:\n  %a = add i32 1\n}",
        "module \"x\"\ndefine i32 @f() {\nentry:\n  ret i32 %nope\n}",
        "module \"x\"\ndefine i32 @f() {\nentry:\n  %a = load i32, i32 5\n  "
        "ret i32 %a\n}",
        "module \"x\"\ndefine void @f() {\nentry:\n  br label\n}",
        "module \"x\"\ndefine void @f() {\nentry:\n  switch i32 1, label "
        "%a, [ x ]\na:\n  ret void\n}",
        "module \"x\"\ntargetset 5 = @f",        // Out-of-order set index.
        "module \"x\"\ndefine i32 @f(i32) {\nentry:\n  ret i32 0\n}"));

}  // namespace
}  // namespace sva::vir
