#include <gtest/gtest.h>

#include "src/analysis/callgraph.h"
#include "src/analysis/pointsto.h"
#include "src/analysis/transforms.h"
#include "src/vir/parser.h"
#include "src/vir/printer.h"
#include "src/vir/structural_verifier.h"

namespace sva::analysis {
namespace {

std::unique_ptr<vir::Module> Parse(const char* text) {
  auto m = vir::ParseModule(text);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  Status v = vir::VerifyModule(**m);
  EXPECT_TRUE(v.ok()) << v.ToString();
  return std::move(m).value();
}

TEST(PointsToTest, DistinctAllocationsGetDistinctNodes) {
  auto m = Parse(R"(
module "two"
define void @f() {
entry:
  %a = malloc i32, i64 1
  %b = malloc i64, i64 1
  store i32 1, i32* %a
  store i64 2, i64* %b
  ret void
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* f = m->GetFunction("f");
  const auto* a = f->blocks()[0]->instructions()[0].get();
  const auto* b = f->blocks()[0]->instructions()[1].get();
  PointsToNode* na = pta.graph().FindNode(a);
  PointsToNode* nb = pta.graph().FindNode(b);
  ASSERT_NE(na, nullptr);
  ASSERT_NE(nb, nullptr);
  EXPECT_NE(na, nb);
  EXPECT_TRUE(na->has_flag(PointsToNode::kHeap));
  EXPECT_TRUE(na->IsTypeHomogeneous());
  EXPECT_EQ(na->element_type()->ToString(), "i32");
  EXPECT_EQ(nb->element_type()->ToString(), "i64");
  EXPECT_EQ(pta.allocation_sites().size(), 2u);
}

TEST(PointsToTest, AssignmentUnifies) {
  auto m = Parse(R"(
module "unify"
define i32* @f(i1 %c) {
entry:
  %a = malloc i32, i64 1
  %b = malloc i32, i64 1
  br i1 %c, label %t, label %e
t:
  br label %merge
e:
  br label %merge
merge:
  %p = phi i32* [ %a, %t ], [ %b, %e ]
  ret i32* %p
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* f = m->GetFunction("f");
  const auto* a = f->blocks()[0]->instructions()[0].get();
  const auto* b = f->blocks()[0]->instructions()[1].get();
  // Unification: both allocations flow into one phi -> one partition.
  EXPECT_EQ(pta.graph().FindNode(a), pta.graph().FindNode(b));
  EXPECT_TRUE(pta.graph().FindNode(a)->IsTypeHomogeneous());
}

TEST(PointsToTest, StoreLoadThroughMemory) {
  auto m = Parse(R"(
module "indir"
define i32* @f(i32** %slot) {
entry:
  %obj = malloc i32, i64 1
  store i32* %obj, i32** %slot
  %back = load i32*, i32** %slot
  ret i32* %back
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* f = m->GetFunction("f");
  const auto* obj = f->blocks()[0]->instructions()[0].get();
  const auto* back = f->blocks()[0]->instructions()[2].get();
  EXPECT_EQ(pta.graph().FindNode(obj), pta.graph().FindNode(back));
}

TEST(PointsToTest, TypeConflictCollapses) {
  auto m = Parse(R"(
module "conflict"
define void @f() {
entry:
  %a = malloc i32, i64 4
  %c = bitcast i32* %a to i64*
  store i64 1, i64* %c
  ret void
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* f = m->GetFunction("f");
  const auto* a = f->blocks()[0]->instructions()[0].get();
  PointsToNode* n = pta.graph().FindNode(a);
  EXPECT_FALSE(n->IsTypeHomogeneous());
  EXPECT_TRUE(n->collapsed());
}

TEST(PointsToTest, KmallocBitcastGivesType) {
  auto m = Parse(R"(
module "km"
%fib_info = type { i32, i32, i64 }
declare i8* @kmalloc(i64)
define void @f() {
entry:
  %raw = call i8* @kmalloc(i64 96)
  %fi = bitcast i8* %raw to %fib_info*
  %field = getelementptr %fib_info* %fi, i64 0, i32 0
  store i32 1, i32* %field
  ret void
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  ASSERT_EQ(pta.allocation_sites().size(), 1u);
  PointsToNode* n = pta.graph().Find(pta.allocation_sites()[0].node);
  EXPECT_TRUE(n->has_flag(PointsToNode::kHeap));
  // kmalloc with constant size and exposed size classes -> per-class source.
  EXPECT_EQ(pta.allocation_sites()[0].allocator, "kmalloc-128");
  // Hmm: 96 rounds to class 128.
  EXPECT_TRUE(n->allocator_sources().count("kmalloc-128"));
}

TEST(PointsToTest, GepKeepsPartitionFieldInsensitive) {
  auto m = Parse(R"(
module "gep"
%pair = type { i32, i32 }
define void @f() {
entry:
  %p = malloc %pair, i64 1
  %f0 = getelementptr %pair* %p, i64 0, i32 0
  %f1 = getelementptr %pair* %p, i64 0, i32 1
  store i32 1, i32* %f0
  store i32 2, i32* %f1
  ret void
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* f = m->GetFunction("f");
  const auto* p = f->blocks()[0]->instructions()[0].get();
  const auto* f0 = f->blocks()[0]->instructions()[1].get();
  EXPECT_EQ(pta.graph().FindNode(p), pta.graph().FindNode(f0));
}

TEST(PointsToTest, ExternalCallsMarkIncomplete) {
  auto m = Parse(R"(
module "ext"
declare void @unknown_library(i8*)
define void @f() {
entry:
  %p = malloc i8, i64 16
  call void @unknown_library(i8* %p)
  ret void
}
define void @g() {
entry:
  %q = malloc i8, i64 16
  store i8 1, i8* %q
  ret void
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* f = m->GetFunction("f");
  vir::Function* g = m->GetFunction("g");
  PointsToNode* escaped =
      pta.graph().FindNode(f->blocks()[0]->instructions()[0].get());
  PointsToNode* internal =
      pta.graph().FindNode(g->blocks()[0]->instructions()[0].get());
  EXPECT_FALSE(escaped->IsComplete());
  EXPECT_TRUE(internal->IsComplete());
}

TEST(PointsToTest, IncompletenessPropagatesToReachableObjects) {
  auto m = Parse(R"(
module "prop"
declare void @sink(i8**)
define void @f() {
entry:
  %inner = malloc i8, i64 8
  %holder = malloc i8*, i64 1
  store i8* %inner, i8** %holder
  call void @sink(i8** %holder)
  ret void
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* f = m->GetFunction("f");
  PointsToNode* inner =
      pta.graph().FindNode(f->blocks()[0]->instructions()[0].get());
  // The holder escaped; objects stored inside it are reachable by the
  // external code, so they are incomplete too.
  EXPECT_FALSE(inner->IsComplete());
}

TEST(PointsToTest, SmallIntToPtrTreatedAsNull) {
  auto m = Parse(R"(
module "errptr"
define void @f() {
entry:
  %e = inttoptr i64 -1 to i8*
  %p = malloc i8, i64 8
  br label %merge
merge:
  %q = phi i8* [ %p, %entry ]
  store i8 1, i8* %q
  ret void
}
define i8* @error_path(i1 %c) {
entry:
  %obj = malloc i8, i64 8
  %err = inttoptr i64 -22 to i8*
  %r = select i1 %c, i8* %obj, i8* %err
  ret i8* %r
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* ep = m->GetFunction("error_path");
  PointsToNode* obj =
      pta.graph().FindNode(ep->blocks()[0]->instructions()[0].get());
  // The -EINVAL-style constant does not poison the partition (Section 4.8).
  EXPECT_FALSE(obj->has_flag(PointsToNode::kUnknown));
}

TEST(PointsToTest, LargeIntToPtrIsManufactured) {
  auto m = Parse(R"(
module "manuf"
define void @f() {
entry:
  %p = inttoptr i64 917504 to i8*
  store i8 0, i8* %p
  ret void
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* f = m->GetFunction("f");
  PointsToNode* n =
      pta.graph().FindNode(f->blocks()[0]->instructions()[0].get());
  EXPECT_TRUE(n->has_flag(PointsToNode::kUnknown));
  EXPECT_FALSE(n->IsComplete());
  EXPECT_FALSE(n->IsTypeHomogeneous());
}

TEST(PointsToTest, InterproceduralArgBinding) {
  auto m = Parse(R"(
module "inter"
define void @init(i32* %p) {
entry:
  store i32 0, i32* %p
  ret void
}
define void @f() {
entry:
  %a = malloc i32, i64 1
  call void @init(i32* %a)
  ret void
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* init = m->GetFunction("init");
  vir::Function* f = m->GetFunction("f");
  EXPECT_EQ(pta.graph().FindNode(init->arg(0)),
            pta.graph().FindNode(f->blocks()[0]->instructions()[0].get()));
}

TEST(PointsToTest, EntryPointsIncompleteVsUserReachable) {
  const char* text = R"(
module "entry"
define i64 @sys_read(i8* %ubuf, i64 %len) {
entry:
  store i8 0, i8* %ubuf
  ret i64 0
}
)";
  {
    auto m = Parse(text);
    AnalysisConfig cfg = AnalysisConfig::LinuxLike();
    cfg.entry_points = {"sys_read"};
    cfg.whole_program = false;
    PointsToAnalysis pta(*m, cfg);
    ASSERT_TRUE(pta.Run().ok());
    PointsToNode* n =
        pta.graph().FindNode(m->GetFunction("sys_read")->arg(0));
    EXPECT_FALSE(n->IsComplete());
    EXPECT_FALSE(n->has_flag(PointsToNode::kUserReachable));
  }
  {
    auto m = Parse(text);
    AnalysisConfig cfg = AnalysisConfig::LinuxLike();
    cfg.entry_points = {"sys_read"};
    cfg.whole_program = true;
    PointsToAnalysis pta(*m, cfg);
    ASSERT_TRUE(pta.Run().ok());
    PointsToNode* n =
        pta.graph().FindNode(m->GetFunction("sys_read")->arg(0));
    // Entire-kernel mode: userspace is a valid object, nothing incomplete.
    EXPECT_TRUE(n->IsComplete());
    EXPECT_TRUE(n->has_flag(PointsToNode::kUserReachable));
  }
}

TEST(PointsToTest, SyscallRegistrationSeedsHandlers) {
  auto m = Parse(R"(
module "sysreg"
define i64 @sys_foo(i8* %ubuf) {
entry:
  store i8 0, i8* %ubuf
  ret i64 0
}
define void @boot() {
entry:
  %h = bitcast i64 (i8*)* @sys_foo to i8*
  call void @sva.register.syscall(i64 42, i8* %h)
  ret void
}
)");
  AnalysisConfig cfg = AnalysisConfig::LinuxLike();
  cfg.whole_program = true;
  PointsToAnalysis pta(*m, cfg);
  ASSERT_TRUE(pta.Run().ok());
  ASSERT_EQ(pta.syscall_table().size(), 1u);
  EXPECT_EQ(pta.syscall_table().at(42)->name(), "sys_foo");
  PointsToNode* n = pta.graph().FindNode(m->GetFunction("sys_foo")->arg(0));
  EXPECT_TRUE(n->has_flag(PointsToNode::kUserReachable));
}

TEST(PointsToTest, CopyHeuristicAvoidsMergingObjects) {
  auto m = Parse(R"(
module "copyh"
declare void @copy_from_user(i8*, i8*, i64)
define void @f(i8* %user) {
entry:
  %kbuf = malloc i8, i64 64
  call void @copy_from_user(i8* %kbuf, i8* %user, i64 64)
  store i8 1, i8* %kbuf
  ret void
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  vir::Function* f = m->GetFunction("f");
  PointsToNode* kbuf =
      pta.graph().FindNode(f->blocks()[0]->instructions()[0].get());
  PointsToNode* user = pta.graph().FindNode(f->arg(0));
  // The copy merges outgoing edges only: kernel buffer and user buffer stay
  // in separate partitions (Section 4.8).
  EXPECT_NE(kbuf, user);
}

TEST(CallGraphTest, DirectAndIndirectResolution) {
  auto m = Parse(R"(
module "cg"
define i64 @a(i64 %x) {
entry:
  ret i64 %x
}
define i64 @b(i64 %x) {
entry:
  ret i64 %x
}
define i64 @c(i64 %x, i64 %y) {
entry:
  ret i64 %x
}
global @tab : [2 x i64 (i64)*]

define void @setup() {
entry:
  %s0 = getelementptr [2 x i64 (i64)*]* @tab, i64 0, i64 0
  store i64 (i64)* @a, i64 (i64)** %s0
  %s1 = getelementptr [2 x i64 (i64)*]* @tab, i64 0, i64 1
  store i64 (i64)* @b, i64 (i64)** %s1
  ret void
}
define i64 @go(i64 %i) {
entry:
  %direct = call i64 @a(i64 1)
  %slot = getelementptr [2 x i64 (i64)*]* @tab, i64 0, i64 %i
  %fp = load i64 (i64)*, i64 (i64)** %slot
  %r = call i64 %fp(i64 %direct)
  ret i64 %r
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  CallGraph cg(pta);
  ASSERT_EQ(cg.indirect_sites().size(), 1u);
  const auto& callees = cg.Callees(cg.indirect_sites()[0]);
  EXPECT_EQ(callees.size(), 2u);  // @a and @b, not @c.
  auto callers = cg.CallersOf(m->GetFunction("a"));
  EXPECT_EQ(callers.size(), 2u);  // The direct call and the indirect site.
}

TEST(CallGraphTest, SignatureAssertionFiltersCandidates) {
  auto m = Parse(R"(
module "sig"
define i64 @good(i64 %x) {
entry:
  ret i64 %x
}
define void @bad(i8* %p) {
entry:
  ret void
}
global @mixed : [2 x i8*]

define void @setup() {
entry:
  %s0 = getelementptr [2 x i8*]* @mixed, i64 0, i64 0
  %a = bitcast i64 (i64)* @good to i8*
  store i8* %a, i8** %s0
  %s1 = getelementptr [2 x i8*]* @mixed, i64 0, i64 1
  %b = bitcast void (i8*)* @bad to i8*
  store i8* %b, i8** %s1
  ret void
}
define i64 @go(i64 %i) {
entry:
  %slot = getelementptr [2 x i8*]* @mixed, i64 0, i64 %i
  %raw = load i8*, i8** %slot
  %fp = bitcast i8* %raw to i64 (i64)*
  %r = call i64 %fp(i64 7) !sig
  ret i64 %r
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  CallGraph cg(pta);
  ASSERT_EQ(cg.indirect_sites().size(), 1u);
  const vir::CallInst* site = cg.indirect_sites()[0];
  // Both functions flow into the table node; the signature assertion
  // filters @bad out (Section 4.8: two orders of magnitude in Linux).
  EXPECT_EQ(cg.UnfilteredCalleeCount(site), 2u);
  ASSERT_EQ(cg.Callees(site).size(), 1u);
  EXPECT_EQ(cg.Callees(site)[0]->name(), "good");
}

TEST(TransformsTest, CloneFunctionIsFaithful) {
  auto m = Parse(R"(
module "clone"
define i64 @sum(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %loop ]
  %acc2 = add i64 %acc, %i
  %i2 = add i64 %i, 1
  %done = icmp sge i64 %i2, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc2
}
)");
  vir::Function* clone =
      CloneFunction(*m, *m->GetFunction("sum"), "sum.clone0");
  ASSERT_NE(clone, nullptr);
  Status s = vir::VerifyFunction(*m, *clone);
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << vir::PrintFunction(*m, *clone);
  EXPECT_EQ(clone->blocks().size(), 3u);
}

TEST(TransformsTest, CloningSeparatesPartitions) {
  const char* text = R"(
module "cl2"
define void @init(i32* %p) {
entry:
  store i32 0, i32* %p
  ret void
}
define void @f() {
entry:
  %a = malloc i32, i64 1
  %b = malloc i64, i64 2
  %bc = bitcast i64* %b to i32*
  call void @init(i32* %a)
  call void @init(i32* %bc)
  ret void
}
)";
  // Without cloning: both allocations unify through @init's parameter, and
  // the i32/i64 conflict collapses the partition.
  {
    auto m = Parse(text);
    PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
    ASSERT_TRUE(pta.Run().ok());
    vir::Function* f = m->GetFunction("f");
    PointsToNode* a =
        pta.graph().FindNode(f->blocks()[0]->instructions()[0].get());
    EXPECT_FALSE(a->IsTypeHomogeneous());
  }
  // With cloning: each call site gets its own copy; partitions separate.
  {
    auto m = Parse(text);
    CloneReport report = CloneForPrecision(*m);
    EXPECT_EQ(report.functions_cloned, 1u);
    EXPECT_EQ(report.call_sites_rewritten, 1u);
    ASSERT_TRUE(vir::VerifyModule(*m).ok());
    PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
    ASSERT_TRUE(pta.Run().ok());
    vir::Function* f = m->GetFunction("f");
    PointsToNode* a =
        pta.graph().FindNode(f->blocks()[0]->instructions()[0].get());
    PointsToNode* b =
        pta.graph().FindNode(f->blocks()[0]->instructions()[1].get());
    EXPECT_NE(pta.graph().Find(a), pta.graph().Find(b));
    EXPECT_TRUE(a->IsTypeHomogeneous());
  }
}

TEST(TransformsTest, DevirtualizeUniqueCallee) {
  auto m = Parse(R"(
module "devirt"
define i64 @only(i64 %x) {
entry:
  ret i64 %x
}
global @slot : i64 (i64)*
define void @setup() {
entry:
  store i64 (i64)* @only, i64 (i64)** @slot
  ret void
}
define i64 @go() {
entry:
  %fp = load i64 (i64)*, i64 (i64)** @slot
  %r = call i64 %fp(i64 5) !sig
  ret i64 %r
}
)");
  PointsToAnalysis pta(*m, AnalysisConfig::LinuxLike());
  ASSERT_TRUE(pta.Run().ok());
  CallGraph cg(pta);
  DevirtReport report = Devirtualize(*m, cg);
  EXPECT_EQ(report.asserted_sites, 1u);
  EXPECT_EQ(report.devirtualized_sites, 1u);
  // The call is now direct.
  vir::Function* go = m->GetFunction("go");
  const auto* call = dynamic_cast<const vir::CallInst*>(
      go->blocks()[0]->instructions()[1].get());
  ASSERT_NE(call, nullptr);
  EXPECT_NE(call->called_function(), nullptr);
  EXPECT_EQ(call->called_function()->name(), "only");
}

}  // namespace
}  // namespace sva::analysis
