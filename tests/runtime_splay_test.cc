#include <gtest/gtest.h>

#include <map>
#include <random>

#include "src/runtime/splay_tree.h"

namespace sva::runtime {
namespace {

TEST(SplayTreeTest, InsertLookupRemove) {
  SplayTree tree;
  EXPECT_TRUE(tree.Insert(100, 16));
  EXPECT_TRUE(tree.Insert(200, 32));
  EXPECT_TRUE(tree.Insert(50, 8));
  EXPECT_EQ(tree.size(), 3u);

  auto hit = tree.LookupContaining(100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->start, 100u);
  EXPECT_EQ(hit->size, 16u);
  EXPECT_TRUE(tree.LookupContaining(115).has_value());
  EXPECT_FALSE(tree.LookupContaining(116).has_value());
  EXPECT_FALSE(tree.LookupContaining(99).has_value());
  EXPECT_TRUE(tree.LookupContaining(231).has_value());
  EXPECT_FALSE(tree.LookupContaining(232).has_value());

  auto removed = tree.RemoveAt(100);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->size, 16u);
  EXPECT_FALSE(tree.LookupContaining(100).has_value());
  EXPECT_EQ(tree.size(), 2u);
  // Removing an interior pointer or absent start fails.
  EXPECT_FALSE(tree.RemoveAt(201).has_value());
  EXPECT_FALSE(tree.RemoveAt(100).has_value());
}

TEST(SplayTreeTest, RejectsOverlaps) {
  SplayTree tree;
  EXPECT_TRUE(tree.Insert(100, 16));
  EXPECT_FALSE(tree.Insert(100, 16));  // Exact duplicate.
  EXPECT_FALSE(tree.Insert(90, 20));   // Overlaps front.
  EXPECT_FALSE(tree.Insert(110, 20));  // Overlaps back.
  EXPECT_FALSE(tree.Insert(104, 4));   // Inside.
  EXPECT_FALSE(tree.Insert(90, 100));  // Encloses.
  EXPECT_TRUE(tree.Insert(116, 4));    // Adjacent after is fine.
  EXPECT_TRUE(tree.Insert(96, 4));     // Adjacent before is fine.
  EXPECT_EQ(tree.size(), 3u);
}

TEST(SplayTreeTest, ZeroSizedRanges) {
  SplayTree tree;
  EXPECT_TRUE(tree.Insert(500, 0));
  auto hit = tree.LookupContaining(500);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size, 0u);
  EXPECT_FALSE(tree.LookupContaining(501).has_value());
  EXPECT_TRUE(tree.RemoveAt(500).has_value());
}

TEST(SplayTreeTest, LookupStart) {
  SplayTree tree;
  tree.Insert(1000, 64);
  EXPECT_TRUE(tree.LookupStart(1000).has_value());
  EXPECT_FALSE(tree.LookupStart(1001).has_value());
}

TEST(SplayTreeTest, ClearEmptiesTree) {
  SplayTree tree;
  for (uint64_t i = 0; i < 100; ++i) {
    tree.Insert(i * 32, 16);
  }
  EXPECT_EQ(tree.size(), 100u);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.LookupContaining(0).has_value());
  EXPECT_TRUE(tree.Insert(0, 16));
}

TEST(SplayTreeTest, RepeatedLookupsAmortize) {
  SplayTree tree;
  for (uint64_t i = 0; i < 1024; ++i) {
    tree.Insert(i * 64, 32);
  }
  // First lookup of a cold address may be deep.
  tree.LookupContaining(512 * 64);
  tree.ResetStats();
  // Once splayed to the root, repeated lookups cost O(1) comparisons.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.LookupContaining(512 * 64 + 7).has_value());
  }
  EXPECT_LE(tree.comparisons(), 400u);  // ~1-3 comparisons per hit.
}

// Property test: the splay tree agrees with a std::map reference model
// across a randomized workload of inserts, removals, and lookups.
class SplayPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SplayPropertyTest, MatchesReferenceModel) {
  std::mt19937 rng(GetParam());
  SplayTree tree;
  std::map<uint64_t, uint64_t> model;  // start -> size

  auto model_overlaps = [&](uint64_t start, uint64_t size) {
    uint64_t end = size == 0 ? start + 1 : start + size;
    for (const auto& [s, sz] : model) {
      uint64_t e = sz == 0 ? s + 1 : s + sz;
      if (start < e && s < end) {
        return true;
      }
    }
    return false;
  };
  auto model_containing =
      [&](uint64_t addr) -> std::optional<std::pair<uint64_t, uint64_t>> {
    for (const auto& [s, sz] : model) {
      if (sz == 0 ? addr == s : (addr >= s && addr < s + sz)) {
        return std::make_pair(s, sz);
      }
    }
    return std::nullopt;
  };

  std::uniform_int_distribution<uint64_t> addr_dist(0, 4096);
  std::uniform_int_distribution<uint64_t> size_dist(0, 64);
  std::uniform_int_distribution<int> op_dist(0, 9);

  for (int step = 0; step < 3000; ++step) {
    int op = op_dist(rng);
    if (op < 4) {  // Insert.
      uint64_t start = addr_dist(rng);
      uint64_t size = size_dist(rng);
      bool expect_ok = !model_overlaps(start, size);
      EXPECT_EQ(tree.Insert(start, size), expect_ok)
          << "insert [" << start << "," << size << ") step " << step;
      if (expect_ok) {
        model[start] = size;
      }
    } else if (op < 6) {  // Remove.
      uint64_t start = addr_dist(rng);
      bool in_model = model.count(start) != 0;
      auto removed = tree.RemoveAt(start);
      EXPECT_EQ(removed.has_value(), in_model) << "remove " << start;
      if (in_model) {
        EXPECT_EQ(removed->size, model[start]);
        model.erase(start);
      }
    } else {  // Lookup.
      uint64_t addr = addr_dist(rng);
      auto expected = model_containing(addr);
      auto got = tree.LookupContaining(addr);
      ASSERT_EQ(got.has_value(), expected.has_value())
          << "lookup " << addr << " step " << step;
      if (expected.has_value()) {
        EXPECT_EQ(got->start, expected->first);
        EXPECT_EQ(got->size, expected->second);
      }
    }
    ASSERT_EQ(tree.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplayPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u, 0xDEADu));

}  // namespace
}  // namespace sva::runtime
