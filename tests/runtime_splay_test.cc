#include <gtest/gtest.h>

#include <map>
#include <random>

#include "src/runtime/metapool_runtime.h"
#include "src/runtime/splay_tree.h"

namespace sva::runtime {
namespace {

TEST(SplayTreeTest, InsertLookupRemove) {
  SplayTree tree;
  EXPECT_TRUE(tree.Insert(100, 16));
  EXPECT_TRUE(tree.Insert(200, 32));
  EXPECT_TRUE(tree.Insert(50, 8));
  EXPECT_EQ(tree.size(), 3u);

  auto hit = tree.LookupContaining(100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->start, 100u);
  EXPECT_EQ(hit->size, 16u);
  EXPECT_TRUE(tree.LookupContaining(115).has_value());
  EXPECT_FALSE(tree.LookupContaining(116).has_value());
  EXPECT_FALSE(tree.LookupContaining(99).has_value());
  EXPECT_TRUE(tree.LookupContaining(231).has_value());
  EXPECT_FALSE(tree.LookupContaining(232).has_value());

  auto removed = tree.RemoveAt(100);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->size, 16u);
  EXPECT_FALSE(tree.LookupContaining(100).has_value());
  EXPECT_EQ(tree.size(), 2u);
  // Removing an interior pointer or absent start fails.
  EXPECT_FALSE(tree.RemoveAt(201).has_value());
  EXPECT_FALSE(tree.RemoveAt(100).has_value());
}

TEST(SplayTreeTest, RejectsOverlaps) {
  SplayTree tree;
  EXPECT_TRUE(tree.Insert(100, 16));
  EXPECT_FALSE(tree.Insert(100, 16));  // Exact duplicate.
  EXPECT_FALSE(tree.Insert(90, 20));   // Overlaps front.
  EXPECT_FALSE(tree.Insert(110, 20));  // Overlaps back.
  EXPECT_FALSE(tree.Insert(104, 4));   // Inside.
  EXPECT_FALSE(tree.Insert(90, 100));  // Encloses.
  EXPECT_TRUE(tree.Insert(116, 4));    // Adjacent after is fine.
  EXPECT_TRUE(tree.Insert(96, 4));     // Adjacent before is fine.
  EXPECT_EQ(tree.size(), 3u);
}

TEST(SplayTreeTest, ZeroSizedRanges) {
  SplayTree tree;
  EXPECT_TRUE(tree.Insert(500, 0));
  auto hit = tree.LookupContaining(500);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size, 0u);
  EXPECT_FALSE(tree.LookupContaining(501).has_value());
  EXPECT_TRUE(tree.RemoveAt(500).has_value());
}

TEST(SplayTreeTest, LookupStart) {
  SplayTree tree;
  tree.Insert(1000, 64);
  EXPECT_TRUE(tree.LookupStart(1000).has_value());
  EXPECT_FALSE(tree.LookupStart(1001).has_value());
}

TEST(SplayTreeTest, RangeEndingAtAddressSpaceTop) {
  SplayTree tree;
  // An object whose last byte is UINT64_MAX: start + size == 2^64 wraps to
  // 0 in naive arithmetic, which used to break both containment and overlap
  // detection.
  constexpr uint64_t kStart = UINT64_MAX - 15;
  ASSERT_TRUE(tree.Insert(kStart, 16));
  EXPECT_TRUE(tree.LookupContaining(kStart).has_value());
  EXPECT_TRUE(tree.LookupContaining(UINT64_MAX).has_value());
  EXPECT_FALSE(tree.LookupContaining(kStart - 1).has_value());
  // Overlap detection must reject objects overlapping the top range.
  EXPECT_FALSE(tree.Insert(UINT64_MAX - 7, 8));   // Inside.
  EXPECT_FALSE(tree.Insert(UINT64_MAX - 31, 32)); // Overlaps front.
  EXPECT_FALSE(tree.Insert(UINT64_MAX, 1));       // Last byte.
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Insert(kStart - 16, 16));      // Adjacent before is fine.
  auto removed = tree.RemoveAt(kStart);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->size, 16u);
}

TEST(SplayTreeTest, OversizedRangeSaturatesInsteadOfWrapping) {
  SplayTree tree;
  // start + size - 1 > UINT64_MAX: the range is clamped to the top of the
  // address space rather than wrapping around to low memory.
  constexpr uint64_t kStart = UINT64_MAX - 3;
  ASSERT_TRUE(tree.Insert(kStart, 100));
  EXPECT_TRUE(tree.LookupContaining(UINT64_MAX).has_value());
  // Low memory is NOT covered by the wrapped range.
  EXPECT_FALSE(tree.LookupContaining(0).has_value());
  EXPECT_FALSE(tree.LookupContaining(95).has_value());
  // But further top-of-memory registrations still conflict.
  EXPECT_FALSE(tree.Insert(UINT64_MAX, 1));
  EXPECT_TRUE(tree.Insert(100, 16));  // Low memory stays usable.
}

TEST(SplayTreeTest, ZeroSizeRangeAtAddressSpaceTop) {
  SplayTree tree;
  ASSERT_TRUE(tree.Insert(UINT64_MAX, 0));
  EXPECT_TRUE(tree.LookupContaining(UINT64_MAX).has_value());
  EXPECT_FALSE(tree.LookupContaining(UINT64_MAX - 1).has_value());
  EXPECT_TRUE(tree.RemoveAt(UINT64_MAX).has_value());
}

TEST(SplayTreeTest, ObjectRangeEndSaturates) {
  ObjectRange top{UINT64_MAX - 15, 16};
  EXPECT_EQ(top.end(), UINT64_MAX);  // Saturated, not wrapped to 0.
  EXPECT_TRUE(top.Contains(UINT64_MAX));
  EXPECT_FALSE(top.Contains(0));
  ObjectRange normal{100, 16};
  EXPECT_EQ(normal.end(), 116u);
}

TEST(SplayTreeTest, RemoveNonRootAfterMixedLookups) {
  SplayTree tree;
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree.Insert(0x1000 + i * 0x100, 0x80));
  }
  // Splay a few other nodes to the root so the victim is deep in the tree.
  tree.LookupContaining(0x1000);
  tree.LookupContaining(0x1000 + 63 * 0x100);
  tree.LookupContaining(0x1000 + 31 * 0x100 + 5);
  auto removed = tree.RemoveAt(0x1000 + 17 * 0x100);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->size, 0x80u);
  EXPECT_EQ(tree.size(), 63u);
  EXPECT_FALSE(tree.LookupContaining(0x1000 + 17 * 0x100).has_value());
  // Neighbours are unaffected.
  EXPECT_TRUE(tree.LookupContaining(0x1000 + 16 * 0x100).has_value());
  EXPECT_TRUE(tree.LookupContaining(0x1000 + 18 * 0x100).has_value());
}

TEST(SplayTreeTest, ClearEmptiesTree) {
  SplayTree tree;
  for (uint64_t i = 0; i < 100; ++i) {
    tree.Insert(i * 32, 16);
  }
  EXPECT_EQ(tree.size(), 100u);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.LookupContaining(0).has_value());
  EXPECT_TRUE(tree.Insert(0, 16));
}

TEST(SplayTreeTest, RepeatedLookupsAmortize) {
  SplayTree tree;
  for (uint64_t i = 0; i < 1024; ++i) {
    tree.Insert(i * 64, 32);
  }
  // First lookup of a cold address may be deep.
  tree.LookupContaining(512 * 64);
  tree.ResetStats();
  // Once splayed to the root, repeated lookups cost O(1) comparisons.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.LookupContaining(512 * 64 + 7).has_value());
  }
  EXPECT_LE(tree.comparisons(), 400u);  // ~1-3 comparisons per hit.
}

// --- Lookup-cache behaviour --------------------------------------------------
//
// The object-lookup cache fronting the splay trees is per-thread and lives
// at the MetaPool level (validated against the pool's generation counter),
// so these tests drive a MetaPool rather than a bare tree.

MetaPool MakePool() { return MetaPool("test", true, 8, true); }

TEST(MetaPoolLookupCacheTest, RepeatedHitsSkipTheTree) {
  MetaPool pool = MakePool();
  for (uint64_t i = 0; i < 256; ++i) {
    pool.RegisterRange(0x1000 + i * 0x100, 0x80);
  }
  pool.Lookup(0x1000 + 128 * 0x100);  // Warm the cache.
  pool.ResetStats();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Lookup(0x1000 + 128 * 0x100 + 7).has_value());
  }
  EXPECT_EQ(pool.cache_hits(), 100u);
  EXPECT_EQ(pool.cache_misses(), 0u);
  EXPECT_EQ(pool.comparisons(), 0u);  // The trees were never touched.
}

TEST(MetaPoolLookupCacheTest, DroppedObjectIsInvalidated) {
  MetaPool pool = MakePool();
  ASSERT_TRUE(pool.RegisterRange(0x1000, 0x100));
  ASSERT_TRUE(pool.Lookup(0x1080).has_value());  // Cached.
  ASSERT_TRUE(pool.RemoveStart(0x1000).has_value());
  // The cache must not resurrect the dropped object.
  EXPECT_FALSE(pool.Lookup(0x1080).has_value());
}

TEST(MetaPoolLookupCacheTest, ReRegisteredObjectDoesNotServeStaleBounds) {
  MetaPool pool = MakePool();
  ASSERT_TRUE(pool.RegisterRange(0x1000, 0x100));
  ASSERT_TRUE(pool.Lookup(0x10F0).has_value());  // Cached.
  ASSERT_TRUE(pool.RemoveStart(0x1000).has_value());
  // Same start, smaller object: the old cached extent would wrongly pass
  // addresses in [0x1040, 0x1100).
  ASSERT_TRUE(pool.RegisterRange(0x1000, 0x40));
  auto hit = pool.Lookup(0x1010);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size, 0x40u);
  EXPECT_FALSE(pool.Lookup(0x10F0).has_value());
  EXPECT_FALSE(pool.Lookup(0x1040).has_value());
}

TEST(MetaPoolLookupCacheTest, DisabledCacheStillCorrect) {
  MetaPool pool = MakePool();
  pool.set_cache_enabled(false);
  for (uint64_t i = 0; i < 16; ++i) {
    pool.RegisterRange(0x1000 + i * 0x100, 0x80);
  }
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t i = 0; i < 16; ++i) {
      ASSERT_TRUE(pool.Lookup(0x1000 + i * 0x100 + 5).has_value());
    }
  }
  EXPECT_EQ(pool.cache_hits(), 0u);
  EXPECT_EQ(pool.cache_misses(), 0u);
  EXPECT_GT(pool.comparisons(), 0u);
  // Re-enabling then disabling starts cold: entries cached while enabled
  // are not served after the toggle.
  pool.set_cache_enabled(true);
  pool.Lookup(0x1000);
  pool.set_cache_enabled(false);
  pool.ResetStats();
  ASSERT_TRUE(pool.Lookup(0x1000).has_value());
  EXPECT_EQ(pool.cache_hits(), 0u);
  EXPECT_GT(pool.comparisons(), 0u);
}

TEST(MetaPoolLookupCacheTest, LookupStartServedFromCache) {
  MetaPool pool = MakePool();
  ASSERT_TRUE(pool.RegisterRange(0x2000, 0x100));
  ASSERT_TRUE(pool.Lookup(0x2050).has_value());  // Cache fill.
  pool.ResetStats();
  auto hit = pool.LookupStart(0x2000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(pool.cache_hits(), 1u);
  EXPECT_EQ(pool.comparisons(), 0u);
  // An interior address is not an exact start: must fall through (and then
  // miss, since no object starts there).
  EXPECT_FALSE(pool.LookupStart(0x2050).has_value());
}

TEST(MetaPoolLookupCacheTest, SpanningObjectFoundFromEveryStripe) {
  MetaPool pool = MakePool();
  // An object spanning many 4 KiB windows is registered in every stripe it
  // touches, so a lookup through any window finds it.
  constexpr uint64_t kStart = 0x10000;
  constexpr uint64_t kSize = 0x40000;  // 64 windows: all stripes.
  ASSERT_TRUE(pool.RegisterRange(kStart, kSize));
  for (uint64_t off = 0; off < kSize; off += 0x1000) {
    auto hit = pool.Lookup(kStart + off);
    ASSERT_TRUE(hit.has_value()) << "offset 0x" << std::hex << off;
    EXPECT_EQ(hit->start, kStart);
    EXPECT_EQ(hit->size, kSize);
  }
  EXPECT_FALSE(pool.Lookup(kStart - 1).has_value());
  EXPECT_FALSE(pool.Lookup(kStart + kSize).has_value());
  // Overlaps with the spanning object are rejected from any window.
  EXPECT_FALSE(pool.RegisterRange(kStart + 0x5000, 0x10));
  EXPECT_FALSE(pool.RegisterRange(kStart - 0x10, 0x20));
  EXPECT_EQ(pool.live_objects(), 1u);
  // A drop removes it from every stripe.
  ASSERT_TRUE(pool.RemoveStart(kStart).has_value());
  EXPECT_EQ(pool.live_objects(), 0u);
  for (uint64_t off = 0; off < kSize; off += 0x1000) {
    ASSERT_FALSE(pool.Lookup(kStart + off).has_value());
  }
}

// Property test under cache churn: randomized insert/remove/lookup agrees
// with a reference model with the cache enabled (the default), exercising
// generation invalidation on every removal path.
TEST(MetaPoolLookupCacheTest, RandomChurnNeverServesStale) {
  std::mt19937 rng(99);
  MetaPool pool = MakePool();
  std::map<uint64_t, uint64_t> model;  // start -> size
  std::uniform_int_distribution<uint64_t> slot_dist(0, 63);
  std::uniform_int_distribution<uint64_t> size_dist(1, 3);
  std::uniform_int_distribution<int> op_dist(0, 9);
  auto start_of = [](uint64_t slot) { return 0x1000 + slot * 0x100; };

  for (int step = 0; step < 20000; ++step) {
    uint64_t slot = slot_dist(rng);
    uint64_t start = start_of(slot);
    int op = op_dist(rng);
    if (op < 2) {  // (Re-)register at a fresh size.
      if (model.count(start) != 0) {
        ASSERT_TRUE(pool.RemoveStart(start).has_value());
        model.erase(start);
      }
      uint64_t size = size_dist(rng) * 0x40;
      ASSERT_TRUE(pool.RegisterRange(start, size));
      model[start] = size;
    } else if (op < 3) {  // Drop.
      bool in_model = model.count(start) != 0;
      EXPECT_EQ(pool.RemoveStart(start).has_value(), in_model);
      model.erase(start);
    } else {  // Lookup at a random offset within the slot.
      uint64_t offset = step % 0x100;
      auto got = pool.Lookup(start + offset);
      auto it = model.find(start);
      bool expect_hit = it != model.end() && offset < it->second;
      ASSERT_EQ(got.has_value(), expect_hit)
          << "slot " << slot << " offset " << offset << " step " << step;
      if (expect_hit) {
        EXPECT_EQ(got->size, it->second);
      }
    }
  }
}

// Property test: the splay tree agrees with a std::map reference model
// across a randomized workload of inserts, removals, and lookups.
class SplayPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SplayPropertyTest, MatchesReferenceModel) {
  std::mt19937 rng(GetParam());
  SplayTree tree;
  std::map<uint64_t, uint64_t> model;  // start -> size

  auto model_overlaps = [&](uint64_t start, uint64_t size) {
    uint64_t end = size == 0 ? start + 1 : start + size;
    for (const auto& [s, sz] : model) {
      uint64_t e = sz == 0 ? s + 1 : s + sz;
      if (start < e && s < end) {
        return true;
      }
    }
    return false;
  };
  auto model_containing =
      [&](uint64_t addr) -> std::optional<std::pair<uint64_t, uint64_t>> {
    for (const auto& [s, sz] : model) {
      if (sz == 0 ? addr == s : (addr >= s && addr < s + sz)) {
        return std::make_pair(s, sz);
      }
    }
    return std::nullopt;
  };

  std::uniform_int_distribution<uint64_t> addr_dist(0, 4096);
  std::uniform_int_distribution<uint64_t> size_dist(0, 64);
  std::uniform_int_distribution<int> op_dist(0, 9);

  for (int step = 0; step < 3000; ++step) {
    int op = op_dist(rng);
    if (op < 4) {  // Insert.
      uint64_t start = addr_dist(rng);
      uint64_t size = size_dist(rng);
      bool expect_ok = !model_overlaps(start, size);
      EXPECT_EQ(tree.Insert(start, size), expect_ok)
          << "insert [" << start << "," << size << ") step " << step;
      if (expect_ok) {
        model[start] = size;
      }
    } else if (op < 6) {  // Remove.
      uint64_t start = addr_dist(rng);
      bool in_model = model.count(start) != 0;
      auto removed = tree.RemoveAt(start);
      EXPECT_EQ(removed.has_value(), in_model) << "remove " << start;
      if (in_model) {
        EXPECT_EQ(removed->size, model[start]);
        model.erase(start);
      }
    } else {  // Lookup.
      uint64_t addr = addr_dist(rng);
      auto expected = model_containing(addr);
      auto got = tree.LookupContaining(addr);
      ASSERT_EQ(got.has_value(), expected.has_value())
          << "lookup " << addr << " step " << step;
      if (expected.has_value()) {
        EXPECT_EQ(got->start, expected->first);
        EXPECT_EQ(got->size, expected->second);
      }
    }
    ASSERT_EQ(tree.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplayPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u, 0xDEADu));

}  // namespace
}  // namespace sva::runtime
