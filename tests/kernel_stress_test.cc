// Stress and failure-injection tests for the minikernel in the SVA-Safe
// configuration: sustained churn must keep every metapool registration
// balanced (no leaked or stale object ranges, which would surface as
// spurious violations) and must never produce a false-positive check
// failure.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/smp/percpu.h"

namespace sva::kernel {
namespace {

class StressHarness {
 public:
  StressHarness() : machine_(512ull << 20) {
    KernelConfig config;
    config.mode = KernelMode::kSvaSafe;
    kernel_ = std::make_unique<Kernel>(machine_, config);
    Status s = kernel_->Boot();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  Kernel& k() { return *kernel_; }
  uint64_t user(uint64_t offset = 0) {
    return kUserVirtualBase +
           static_cast<uint64_t>(kernel_->current_pid()) * 0x100000 + offset;
  }
  uint64_t Call(Sys n, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0) {
    auto r = kernel_->Syscall(n, a0, a1, a2);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ~uint64_t{0};
  }

  hw::Machine machine_;
  std::unique_ptr<Kernel> kernel_;
};

TEST(KernelStressTest, FileChurnKeepsRegistrationsBalanced) {
  StressHarness h;
  for (int round = 0; round < 200; ++round) {
    std::string path = "/stress/f" + std::to_string(round % 16);
    ASSERT_TRUE(h.k().PokeUserString(h.user(0), path).ok());
    uint64_t fd = h.Call(Sys::kOpen, h.user(0), 1);
    std::vector<char> data(1000 + round * 7 % 3000, 'x');
    ASSERT_TRUE(h.k().PokeUser(h.user(64), data.data(), data.size()).ok());
    ASSERT_EQ(h.Call(Sys::kWrite, fd, h.user(64), data.size()), data.size());
    ASSERT_EQ(h.Call(Sys::kClose, fd), 0u);
    if (round % 4 == 3) {
      ASSERT_EQ(h.Call(Sys::kUnlink, h.user(0)), 0u);
    }
  }
  // No check ever failed: churn produced zero false positives.
  EXPECT_EQ(h.k().pools().stats().total_failed(), 0u);
  EXPECT_TRUE(h.k().pools().violations().empty());
  // Registrations and drops stay coupled: every unlink freed its blocks.
  const auto& stats = h.k().pools().stats();
  EXPECT_GT(stats.registrations, 200u);
  EXPECT_GT(stats.drops, 100u);
}

TEST(KernelStressTest, TaskLifecycleChurn) {
  StressHarness h;
  for (int round = 0; round < 120; ++round) {
    uint64_t child = h.Call(Sys::kFork);
    ASSERT_TRUE(h.k().Yield().ok());
    ASSERT_EQ(h.k().current_pid(), static_cast<int>(child));
    if (round % 2 == 0) {
      h.Call(Sys::kExecve, h.user(0));
    }
    h.Call(Sys::kExit, 0);
    ASSERT_EQ(h.k().current_pid(), 1);
    ASSERT_EQ(h.Call(Sys::kWaitPid, child), child);
  }
  EXPECT_EQ(h.k().stats().forks, 120u);
  EXPECT_EQ(h.k().pools().stats().total_failed(), 0u);
  // Only init remains.
  int alive = 0;
  for (int pid = 1; pid < 200; ++pid) {
    if (h.k().FindTask(pid) != nullptr) {
      ++alive;
    }
  }
  EXPECT_EQ(alive, 1);
}

TEST(KernelStressTest, PipeSocketInterleaving) {
  StressHarness h;
  ASSERT_EQ(h.Call(Sys::kPipe, h.user(0)), 0u);
  uint32_t fds[2];
  ASSERT_TRUE(h.k().PeekUser(h.user(0), fds, 8).ok());
  uint64_t sock = h.Call(Sys::kSocket);
  std::vector<char> payload(777, 'p');
  ASSERT_TRUE(h.k().PokeUser(h.user(64), payload.data(), payload.size()).ok());
  for (int round = 0; round < 300; ++round) {
    ASSERT_EQ(h.Call(Sys::kWrite, fds[1], h.user(64), payload.size()),
              payload.size());
    ASSERT_EQ(h.Call(Sys::kSend, sock, h.user(64), payload.size()),
              payload.size());
    ASSERT_EQ(h.Call(Sys::kRead, fds[0], h.user(4096), payload.size()),
              payload.size());
    ASSERT_EQ(h.Call(Sys::kRecv, sock, h.user(4096), payload.size()),
              payload.size());
  }
  EXPECT_EQ(h.k().pools().stats().total_failed(), 0u);
}

TEST(KernelStressTest, SignalStorm) {
  StressHarness h;
  for (int sig = 0; sig < kMaxSignals; ++sig) {
    h.Call(Sys::kSigaction, static_cast<uint64_t>(sig), 1);
  }
  for (int round = 0; round < 100; ++round) {
    h.Call(Sys::kKill, 1, static_cast<uint64_t>(round % kMaxSignals));
  }
  Task* init = h.k().FindTask(1);
  ASSERT_NE(init, nullptr);
  EXPECT_EQ(init->signals_delivered, 100u);
  EXPECT_EQ(init->pending_signals, 0u);
}

// Concurrent vfs I/O and task churn from distinct host threads: vfs
// syscalls take vfs_lock_ -> files_lock_ while fork/kill/brk/sigaction
// take tasks_lock_ -> files_lock_, and since the BKL split neither path
// serialises the other. Registered with the `concurrency` ctest label so
// the TSan configuration runs it; any missing synchronisation between the
// two leaf-lock paths (fd-table copy vs. fd use, disposition copy vs.
// sigaction, stats counters) surfaces as a reported race.
//
// The concurrent phase deliberately never writes user memory: SysFork's
// eager page copy reads the parent's touched pages, which is only
// race-free against workers that also just read them (kWrite copies
// *from* user buffers poked before the threads start). Reads into user
// memory happen in the sequential teardown.
TEST(KernelStressTest, ConcurrentVfsAndForkOffTheBkl) {
  StressHarness h;
  constexpr int kVfsThreads = 3;
  constexpr int kRounds = 200;
  constexpr int kForks = 16;
  constexpr uint64_t kPayload = 512;

  // One file and one pre-poked payload buffer per vfs worker.
  uint64_t fds[kVfsThreads];
  std::vector<char> payload(kPayload, 'c');
  for (int t = 0; t < kVfsThreads; ++t) {
    std::string path = "/stress/conc" + std::to_string(t);
    ASSERT_TRUE(h.k().PokeUserString(h.user(0), path).ok());
    fds[t] = h.Call(Sys::kOpen, h.user(0), 1);
    ASSERT_LT(fds[t], 16u);
    ASSERT_TRUE(h.k()
                    .PokeUser(h.user(8192 + t * 2048), payload.data(),
                              payload.size())
                    .ok());
  }

  // One virtual CPU per worker, each thread bound to its own: syscall
  // entry state (interrupt-context slab, SVA-OS stats) is per-CPU, so
  // concurrent entries must come from distinct CPUs — exactly as on real
  // hardware, and exactly what bench/kernel_harness.h's RunWorkers does.
  h.k().svaos().ConfigureCpus(kVfsThreads + 1);
  std::vector<uint64_t> children;  // Written only by the fork thread.
  std::vector<std::thread> workers;
  for (int t = 0; t < kVfsThreads; ++t) {
    workers.emplace_back([&h, &fds, t] {
      smp::ScopedCpu bind(static_cast<unsigned>(t));
      for (int round = 0; round < kRounds; ++round) {
        h.Call(Sys::kWrite, fds[t], h.user(8192 + t * 2048), kPayload);
        h.Call(Sys::kLseek, fds[t], 0, 0);
      }
    });
  }
  workers.emplace_back([&h, &children] {
    smp::ScopedCpu bind(kVfsThreads);
    for (int i = 0; i < kForks; ++i) {
      children.push_back(h.Call(Sys::kFork));
      h.Call(Sys::kSigaction, 9, 77);
      h.Call(Sys::kKill, 1, 9);
      h.Call(Sys::kBrk, 4096);
      for (int j = 0; j < 25; ++j) {
        h.Call(Sys::kGetPid);
      }
    }
  });
  for (std::thread& w : workers) {
    w.join();
  }

  // Sequential teardown: run and reap every child, then read the files
  // back to prove the concurrent writes landed intact.
  for (uint64_t child : children) {
    while (h.k().current_pid() != static_cast<int>(child)) {
      ASSERT_TRUE(h.k().Yield().ok());
    }
    h.Call(Sys::kExit, 0);
    ASSERT_EQ(h.Call(Sys::kWaitPid, child), child);
  }
  for (int t = 0; t < kVfsThreads; ++t) {
    ASSERT_EQ(h.Call(Sys::kLseek, fds[t], 0, 0), 0u);
    ASSERT_EQ(h.Call(Sys::kRead, fds[t], h.user(32768), kPayload), kPayload);
    char back[kPayload] = {};
    ASSERT_TRUE(h.k().PeekUser(h.user(32768), back, kPayload).ok());
    EXPECT_EQ(back[0], 'c');
    EXPECT_EQ(back[kPayload - 1], 'c');
    ASSERT_EQ(h.Call(Sys::kClose, fds[t]), 0u);
  }
  EXPECT_EQ(h.k().stats().forks, static_cast<uint64_t>(kForks));
  EXPECT_EQ(h.k().pools().stats().total_failed(), 0u);
  EXPECT_TRUE(h.k().pools().violations().empty());
}

TEST(KernelStressTest, FdExhaustionIsGraceful) {
  StressHarness h;
  const uint64_t max_fds = h.k().config().max_fds;
  const uint64_t limit = h.k().config().max_fds_limit;
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/stress/fds").ok());
  std::vector<uint64_t> fds;
  // Fill the table. The embedded array holds max_fds entries; past that the
  // table grows on demand (the files_struct expansion) until max_fds_limit,
  // where -EMFILE finally appears.
  while (true) {
    auto r = h.k().Syscall(Sys::kOpen, h.user(0), 1);
    ASSERT_TRUE(r.ok());
    if (*r > (uint64_t{1} << 60)) {
      break;  // -EMFILE.
    }
    fds.push_back(*r);
    ASSERT_LE(fds.size(), limit);
  }
  EXPECT_GT(fds.size(), max_fds);  // Growth actually happened.
  EXPECT_EQ(fds.size(), limit);
  // Everything still works after closing.
  for (uint64_t fd : fds) {
    ASSERT_EQ(h.Call(Sys::kClose, fd), 0u);
  }
  EXPECT_LT(h.Call(Sys::kOpen, h.user(0), 1), max_fds);
}

TEST(KernelStressTest, ViolationDoesNotCorruptKernel) {
  StressHarness h;
  ASSERT_TRUE(h.k().PokeUserString(h.user(0), "/stress/v").ok());
  uint64_t fd = h.Call(Sys::kOpen, h.user(0), 1);
  uint64_t user_size = h.k().config().user_pages_per_task * hw::kPageSize;
  // Trigger a violation...
  auto bad = h.k().Syscall(Sys::kWrite, fd, h.user(user_size - 4), 64);
  EXPECT_EQ(bad.status().code(), StatusCode::kSafetyViolation);
  // ...then confirm the kernel still functions for legal work.
  const char ok[] = "still alive";
  ASSERT_TRUE(h.k().PokeUser(h.user(64), ok, sizeof(ok)).ok());
  EXPECT_EQ(h.Call(Sys::kWrite, fd, h.user(64), sizeof(ok)), sizeof(ok));
  EXPECT_EQ(h.Call(Sys::kLseek, fd, 0, 0), 0u);
  EXPECT_EQ(h.Call(Sys::kRead, fd, h.user(512), sizeof(ok)), sizeof(ok));
  char back[sizeof(ok)] = {};
  ASSERT_TRUE(h.k().PeekUser(h.user(512), back, sizeof(ok)).ok());
  EXPECT_STREQ(back, ok);
}

}  // namespace
}  // namespace sva::kernel
