// Minikernel tour: boots the SVA-ported kernel in the Linux-SVA-Safe
// configuration on the simulated machine and exercises the subsystems the
// paper's evaluation touches — files, pipes, fork/exec, signals delivered
// through llva.ipush.function — then demonstrates the Section 4.6
// userspace-object check stopping a user→kernel straddling buffer.
//
// Build and run:  ./build/examples/minikernel_demo
#include <cstdio>
#include <cstring>

#include "src/kernel/kernel.h"

using sva::kernel::Kernel;
using sva::kernel::KernelConfig;
using sva::kernel::KernelMode;
using sva::kernel::Sys;

int main() {
  sva::hw::Machine machine(256ull << 20);
  KernelConfig config;
  config.mode = KernelMode::kSvaSafe;
  Kernel kernel(machine, config);
  if (sva::Status s = kernel.Boot(); !s.ok()) {
    std::printf("boot failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("booted %s kernel, pid %d running\n",
              KernelModeName(config.mode), kernel.current_pid());

  uint64_t user = sva::kernel::kUserVirtualBase +
                  static_cast<uint64_t>(kernel.current_pid()) * 0x100000;

  // Files.
  (void)kernel.PokeUserString(user, "/etc/motd");
  uint64_t fd = *kernel.Syscall(Sys::kOpen, user, 1);
  const char motd[] = "SVA: safe execution for commodity kernels";
  (void)kernel.PokeUser(user + 256, motd, sizeof(motd));
  (void)kernel.Syscall(Sys::kWrite, fd, user + 256, sizeof(motd));
  (void)kernel.Syscall(Sys::kLseek, fd, 0, 0);
  (void)kernel.Syscall(Sys::kRead, fd, user + 512, sizeof(motd));
  char back[sizeof(motd)] = {};
  (void)kernel.PeekUser(user + 512, back, sizeof(motd));
  std::printf("file round-trip: \"%s\"\n", back);

  // Pipes.
  (void)kernel.Syscall(Sys::kPipe, user + 64);
  uint32_t fds[2];
  (void)kernel.PeekUser(user + 64, fds, 8);
  (void)kernel.Syscall(Sys::kWrite, fds[1], user + 256, 16);
  (void)kernel.Syscall(Sys::kRead, fds[0], user + 1024, 16);
  std::printf("pipe round-trip: 16 bytes through fd %u -> fd %u\n", fds[1],
              fds[0]);

  // Signals through llva.ipush.function.
  (void)kernel.Syscall(Sys::kSigaction, 10, /*handler id=*/1);
  (void)kernel.Syscall(Sys::kKill, 1, 10);
  std::printf("signal 10 delivered via llva.ipush.function: %llu handler "
              "run(s)\n",
              static_cast<unsigned long long>(
                  kernel.FindTask(1)->signals_delivered));

  // fork / exec / wait.
  uint64_t child = *kernel.Syscall(Sys::kFork);
  (void)kernel.Yield();
  (void)kernel.Syscall(Sys::kExecve, user);
  (void)kernel.Syscall(Sys::kExit, 0);
  (void)kernel.Syscall(Sys::kWaitPid, child);
  std::printf("fork/exec/exit/wait lifecycle for pid %llu complete\n",
              static_cast<unsigned long long>(child));

  // The Section 4.6 check: a buffer straddling out of userspace.
  uint64_t user_bytes =
      config.user_pages_per_task * sva::hw::kPageSize;
  auto straddle = kernel.Syscall(Sys::kWrite, fd, user + user_bytes - 8, 64);
  std::printf("user->kernel straddling write: %s\n",
              straddle.ok() ? "NOT CAUGHT (bug!)" : "stopped by the SVM");
  if (!straddle.ok()) {
    std::printf("  %s\n", straddle.status().ToString().c_str());
  }

  const auto& checks = kernel.pools().stats();
  const auto& svaos = kernel.svaos().stats();
  std::printf(
      "\ntotals: %llu syscalls | %llu SVA-OS interrupt contexts | %llu "
      "run-time checks (%llu failed)\n",
      static_cast<unsigned long long>(kernel.stats().syscalls),
      static_cast<unsigned long long>(svaos.icontext_created),
      static_cast<unsigned long long>(checks.total_performed()),
      static_cast<unsigned long long>(checks.total_failed()));
  return straddle.ok() ? 1 : 0;
}
