// Trusted-computing-base demo (Section 5): the complex safety-checking
// compiler stays OUT of the TCB because the small bytecode type checker
// re-validates its metapool annotations. This example compiles a module,
// shows it type-checks, then corrupts the pointer-analysis results the way
// a compiler bug would and shows the verifier rejecting the module. It
// also demonstrates the signed bytecode cache rejecting tampered images.
//
// Build and run:  ./build/examples/verifier_demo
#include <cstdio>

#include "src/corpus/corpus.h"
#include "src/safety/compiler.h"
#include "src/svm/svm.h"
#include "src/verifier/injector.h"
#include "src/verifier/typechecker.h"
#include "src/vir/bytecode.h"
#include "src/vir/parser.h"

using sva::verifier::BugKind;

static std::unique_ptr<sva::vir::Module> Compile() {
  auto m = sva::vir::ParseModule(sva::corpus::KernelCorpusText(true));
  if (!m.ok()) {
    return nullptr;
  }
  sva::safety::SafetyCompilerOptions options;
  options.analysis = sva::corpus::CorpusConfig(true);
  if (!sva::safety::RunSafetyCompiler(**m, options).ok()) {
    return nullptr;
  }
  return std::move(m).value();
}

int main() {
  auto clean = Compile();
  if (clean == nullptr) {
    std::printf("setup failed\n");
    return 1;
  }
  auto result = sva::verifier::TypeCheckModule(*clean);
  std::printf("clean compiler output type-checks: %s\n\n",
              result.ok ? "yes" : "NO");

  for (int kind = 0; kind < 4; ++kind) {
    auto m = Compile();
    sva::Status injected =
        sva::verifier::InjectBug(*m, static_cast<BugKind>(kind), 1);
    if (!injected.ok()) {
      std::printf("%-28s: no injection site\n",
                  BugKindName(static_cast<BugKind>(kind)));
      continue;
    }
    sva::verifier::TypeCheckOptions options;
    options.collect_all = true;
    auto check = sva::verifier::TypeCheckModule(*m, options);
    std::printf("%-28s: %s\n", BugKindName(static_cast<BugKind>(kind)),
                check.ok ? "MISSED (verifier bug!)" : "caught");
    if (!check.ok) {
      std::printf("    %s\n", check.errors.front().c_str());
    }
  }

  // The signed native-code cache (Section 3.4).
  std::printf("\nsigned bytecode cache:\n");
  std::vector<uint8_t> bytecode = sva::vir::WriteBytecode(*clean);
  sva::svm::SecureVirtualMachine vm;
  auto loaded = vm.LoadBytecode(bytecode);
  std::printf("  pristine image loads:   %s\n",
              loaded.ok() ? "yes (translation cached + signed)" : "no");
  std::vector<uint8_t> tampered = bytecode;
  tampered[tampered.size() / 2] ^= 0x40;
  std::printf("  tampered image cached:  %s\n",
              vm.CacheContains(tampered) ? "yes (bug!)" : "no — digest differs");
  return 0;
}
