// Quickstart: the complete SVA flow on twenty lines of kernel-style code.
//
//   1. Write (or front-end-compile to) SVA bytecode.
//   2. Run the safety-checking compiler: it infers metapools from the
//      pointer analysis and inserts object registration + run-time checks.
//   3. Load into the Secure Virtual Machine: the bytecode verifier and the
//      metapool type checker validate the module, then the translator runs
//      it with checks live.
//   4. Watch a heap overflow get stopped.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "src/safety/compiler.h"
#include "src/svm/svm.h"
#include "src/vir/parser.h"
#include "src/vir/printer.h"

int main() {
  // A kernel-ish function: allocate a 32-byte buffer, store at an
  // attacker-controlled index.
  const char* source = R"(
module "quickstart"
declare i8* @kmalloc(i64)
declare void @kfree(i8*)

define i8 @lookup(i64 %index) {
entry:
  %buf = call i8* @kmalloc(i64 32)
  %slot = getelementptr i8* %buf, i64 %index
  %v = load i8, i8* %slot
  call void @kfree(i8* %buf)
  ret i8 %v
}
)";

  // 1. Front end.
  auto module = sva::vir::ParseModule(source);
  if (!module.ok()) {
    std::printf("parse error: %s\n", module.status().ToString().c_str());
    return 1;
  }

  // 2. Safety-checking compiler (outside the trusted computing base).
  auto report = sva::safety::RunSafetyCompiler(**module);
  if (!report.ok()) {
    std::printf("compile error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("safety compiler: %llu metapool(s), %llu registration(s), "
              "%llu bounds check(s)\n\n",
              static_cast<unsigned long long>(report->metapools),
              static_cast<unsigned long long>(report->reg_obj),
              static_cast<unsigned long long>(report->bounds_checks +
                                              report->direct_bounds_checks));
  std::printf("instrumented bytecode:\n%s\n",
              sva::vir::PrintFunction(**module,
                                      *(*module)->GetFunction("lookup"))
                  .c_str());

  // 3. The SVM verifies (structural + type check), translates, and caches.
  sva::svm::SecureVirtualMachine vm;
  auto loaded = vm.LoadModule(std::move(module).value());
  if (!loaded.ok()) {
    std::printf("SVM rejected module: %s\n",
                loaded.status().ToString().c_str());
    return 1;
  }

  // 4. Execute: a legal index works; an out-of-bounds one is stopped.
  auto good = (*loaded)->Run("lookup", {31});
  std::printf("lookup(31)  -> %s\n", good.status.ok() ? "ok" : "trapped");
  auto bad = (*loaded)->Run("lookup", {32});
  std::printf("lookup(32)  -> %s\n",
              bad.status.ok() ? "NOT CAUGHT (bug!)" : "trapped");
  std::printf("  %s\n", bad.status.ToString().c_str());
  return bad.status.ok() ? 1 : 0;
}
