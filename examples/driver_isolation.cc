// Component isolation (Section 4.9): a buggy dynamically-loaded driver
// cannot corrupt the rest of the kernel through memory errors. The driver
// below has a classic off-by-N DMA-ring bug; loaded alongside the core
// kernel module, its wild write is stopped at the metapool boundary and
// the kernel's own objects stay intact.
//
// Build and run:  ./build/examples/driver_isolation
#include <cstdio>

#include "src/safety/compiler.h"
#include "src/svm/svm.h"
#include "src/vir/parser.h"

namespace {

constexpr const char* kKernelWithDriver = R"(
module "kernel_plus_driver"

declare i8* @kmalloc(i64)
declare void @kfree(i8*)

global @kernel_state : [8 x i64]

define void @core_init() {
entry:
  %slot = getelementptr [8 x i64]* @kernel_state, i64 0, i64 0
  store i64 4242, i64* %slot
  ret void
}

define i64 @core_read_state() {
entry:
  %slot = getelementptr [8 x i64]* @kernel_state, i64 0, i64 0
  %v = load i64, i64* %slot
  ret i64 %v
}

; The third-party driver: fills a 16-entry ring but its loop bound comes
; from an untrusted device register value.
define i64 @buggy_driver_fill(i64 %device_count) {
entry:
  %ring = call i8* @kmalloc(i64 128)
  %zero = icmp eq i64 %device_count, 0
  br i1 %zero, label %done, label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %off = mul i64 %i, 8
  %slot8 = getelementptr i8* %ring, i64 %off
  %slot = bitcast i8* %slot8 to i64*
  store i64 -1, i64* %slot
  %i2 = add i64 %i, 1
  %more = icmp ult i64 %i2, %device_count
  br i1 %more, label %loop, label %done
done:
  call void @kfree(i8* %ring)
  ret i64 %device_count
}
)";

}  // namespace

int main() {
  auto module = sva::vir::ParseModule(kKernelWithDriver);
  if (!module.ok()) {
    std::printf("parse error: %s\n", module.status().ToString().c_str());
    return 1;
  }
  auto report = sva::safety::RunSafetyCompiler(**module);
  if (!report.ok()) {
    std::printf("compile error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  sva::svm::SecureVirtualMachine vm;
  auto loaded = vm.LoadModule(std::move(module).value());
  if (!loaded.ok()) {
    std::printf("load error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  (void)(*loaded)->Run("core_init", {});
  std::printf("kernel state initialized: %llu\n",
              static_cast<unsigned long long>(
                  (*loaded)->Run("core_read_state", {}).value));

  // The driver behaves with a sane device: 16 ring entries.
  auto good = (*loaded)->Run("buggy_driver_fill", {16});
  std::printf("driver fill(16): %s\n", good.status.ok() ? "ok" : "trapped");

  // A malicious/flaky device reports 4096 entries: the driver would smash
  // 32 KiB past its 128-byte ring — through kernel heap, possibly into
  // core kernel objects. The metapool bounds check stops it at byte 128.
  auto bad = (*loaded)->Run("buggy_driver_fill", {4096});
  std::printf("driver fill(4096): %s\n",
              bad.status.ok() ? "NOT CAUGHT (isolation failed!)"
                              : "stopped at the object boundary");
  if (!bad.status.ok()) {
    std::printf("  %s\n", bad.status.ToString().c_str());
  }

  // The rest of the kernel is untouched: isolation held.
  auto state = (*loaded)->Run("core_read_state", {});
  std::printf("kernel state after the attack: %llu (%s)\n",
              static_cast<unsigned long long>(state.value),
              state.value == 4242 ? "intact — component isolation held"
                                  : "CORRUPTED");
  return (bad.status.ok() || state.value != 4242) ? 1 : 0;
}
