// Figure 1 reproduction: the system organization — source is compiled to
// SVA bytecode, the safety-checking compiler transforms it, the bytecode
// verifier and type checker validate it, the translator turns it into
// executable form (with the signed native-code cache), and the SVM runs it
// with checks live. This bench drives the whole pipeline over the kernel
// corpus and reports per-stage cost, demonstrating that verification and
// translation are cheap enough for load time (Section 3.1).
#include <cstdio>

#include "bench/common.h"
#include "src/corpus/corpus.h"
#include "src/safety/compiler.h"
#include "src/svm/svm.h"
#include "src/verifier/typechecker.h"
#include "src/vir/bytecode.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::bench {
namespace {

void Run() {
  std::printf("Figure 1 pipeline: compile -> verify -> translate -> execute\n\n");
  std::string source = corpus::KernelCorpusText(true);

  Table table({"Stage", "Time (us)", "Notes"});

  // Front end: source -> bytecode module.
  std::unique_ptr<vir::Module> module;
  double parse_us = TimeOnceUs([&] {
    auto m = vir::ParseModule(source);
    if (m.ok()) {
      module = std::move(m).value();
    }
  });
  if (module == nullptr) {
    std::fprintf(stderr, "parse failed\n");
    std::exit(1);
  }
  table.AddRow({"front end (parse)", Fmt("%.0f", parse_us),
                std::to_string(source.size()) + " bytes of source"});

  // Safety-checking compiler (outside the TCB).
  safety::SafetyReport report;
  double compile_us = TimeOnceUs([&] {
    safety::SafetyCompilerOptions options;
    options.analysis = corpus::CorpusConfig(true);
    auto r = safety::RunSafetyCompiler(*module, options);
    if (r.ok()) {
      report = *r;
    }
  });
  table.AddRow({"safety-checking compiler", Fmt("%.0f", compile_us),
                std::to_string(report.metapools) + " metapools, " +
                    std::to_string(report.bounds_checks +
                                   report.direct_bounds_checks) +
                    " bounds checks"});

  // Bytecode serialization (ship to the end-user system).
  std::vector<uint8_t> bytecode;
  double write_us =
      TimeOnceUs([&] { bytecode = vir::WriteBytecode(*module); });
  table.AddRow({"bytecode serialization", Fmt("%.0f", write_us),
                std::to_string(bytecode.size()) + " bytes, digest " +
                    std::to_string(vir::DigestBytes(bytecode))});

  // Load-time verification (TCB): structural + metapool type check.
  double verify_us = TimeOnceUs([&] {
    auto m = vir::ReadBytecode(bytecode);
    if (!m.ok()) {
      std::exit(1);
    }
    if (!vir::VerifyModule(**m).ok()) {
      std::exit(1);
    }
    if (!verifier::TypeCheckModule(**m).ok) {
      std::exit(1);
    }
  });
  table.AddRow({"bytecode verifier + type check", Fmt("%.0f", verify_us),
                "intraprocedural, in the TCB"});

  // Translation + execution in the SVM (checks live).
  svm::SecureVirtualMachine vm;
  std::unique_ptr<svm::LoadedModule> loaded;
  double translate_us = TimeOnceUs([&] {
    auto l = vm.LoadBytecode(bytecode);
    if (l.ok()) {
      loaded = std::move(l).value();
    }
  });
  if (loaded == nullptr) {
    std::fprintf(stderr, "SVM load failed\n");
    std::exit(1);
  }
  table.AddRow({"SVM load + translate", Fmt("%.0f", translate_us),
                vm.CacheContains(bytecode) ? "signed translation cached"
                                           : "cache miss"});

  double exec_us = TimeOnceUs([&] {
    (void)loaded->Run("boot", {});
    (void)loaded->Run("fs_setup_ops", {});
    for (uint64_t i = 0; i < 50; ++i) {
      (void)loaded->Run("task_create", {i});
      (void)loaded->Run("net_validate", {i % 12});
    }
  });
  table.AddRow({"execution (100 kernel ops)", Fmt("%.0f", exec_us),
                std::to_string(loaded->pools().stats().total_performed()) +
                    " run-time checks performed"});

  JsonReport::Get().Add("parse", parse_us, "us");
  JsonReport::Get().Add("safety-compile", compile_us, "us");
  JsonReport::Get().Add("serialize", write_us, "us");
  JsonReport::Get().Add("verify+typecheck", verify_us, "us");
  JsonReport::Get().Add("svm-load", translate_us, "us");
  JsonReport::Get().Add("execute-100-ops", exec_us, "us");

  table.Print();
  std::printf(
      "\nThe verifier and translator are intraprocedural and fast enough "
      "to run at load\ntime for dynamically loaded kernel modules "
      "(Section 3.1).\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "fig1_pipeline");
  sva::bench::Run();
  return sva::bench::JsonReport::Get().Finish();
}
