// Table 6 reproduction: "thttpd bandwidth reduction as a percentage of
// Linux native performance" — serving a 311-byte page, an 85 KB file, and
// a CGI-style request (fork/exec per request) over 25 logical connections.
//
// Expected shape: tiny-file serving and CGI suffer the most under safety
// checks (~33% / ~22% reduction in the paper); large files amortize the
// per-request cost (~2%).
#include <cstdio>
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"

namespace sva::bench {
namespace {

using kernel::Sys;

constexpr int kConnections = 25;  // Logical connections (8 socket fds pooled).

// Pre-opened server state per kernel: one file plus the connection pool.
struct Server {
  explicit Server(BootedKernel& kernel, uint64_t file_size) : k(kernel) {
    fd = k.OpenFile("/www/file");
    k.FillFile(fd, file_size);
    // The fd table caps at 16: model the 25 connections with the available
    // socket fds, reusing them round-robin like a connection pool.
    for (int c = 0; c < 8; ++c) {
      socks.push_back(k.Call(Sys::kSocket));
    }
  }
  BootedKernel& k;
  uint64_t fd = 0;
  std::vector<uint64_t> socks;
};

// Serves `file_size` bytes per request over `requests` requests round-robin
// across connections; returns KB/s of payload moved.
double ServeKBps(Server& server, uint64_t file_size, int requests,
                 bool cgi) {
  BootedKernel& k = server.k;
  uint64_t fd = server.fd;
  std::vector<uint64_t>& socks = server.socks;
  double us = TimeOnceUs([&] {
    for (int r = 0; r < requests; ++r) {
      uint64_t sock = socks[static_cast<size_t>(r) % socks.size()];
      if (cgi) {
        // CGI: fork/exec a handler per request.
        uint64_t child = k.Call(Sys::kFork);
        (void)k.k().Yield();
        k.Call(Sys::kExecve, k.user(0));
        k.Call(Sys::kExit, 0);
        k.Call(Sys::kWaitPid, child);
      }
      k.Call(Sys::kLseek, fd, 0, 0);
      // Small responses go out in one write; large files stream in 16 KiB
      // chunks (large-file serving amortizes per-request costs, which is
      // exactly why the paper's 85 KB row barely degrades).
      uint64_t chunk_size = file_size <= 4096 ? file_size : 16 * 1024;
      for (uint64_t done = 0; done < file_size;) {
        uint64_t n = std::min<uint64_t>(chunk_size, file_size - done);
        k.Call(Sys::kRead, fd, k.user(16384), n);
        k.Call(Sys::kSend, sock, k.user(16384), n);
        k.Call(Sys::kRecv, sock, k.user(36864), n);  // Drain loopback peer.
        done += n;
      }
    }
  });
  double bytes = static_cast<double>(file_size) * requests;
  return bytes / us * 1000.0;  // KB/s given us.
}

void Run() {
  std::printf(
      "Table 6: thttpd-style bandwidth, %d concurrent connections\n\n",
      kConnections);
  struct Case {
    std::string name;
    uint64_t size;
    int requests;
    bool cgi;
  };
  const Case cases[] = {
      {"311 B", 311, 400, false},
      {"85 KB", 85 * 1024, 24, false},
      {"cgi (311 B)", 311, 250, true},
  };
  Table table({"Request", "Native (KB/s)", "SVA gcc (%)", "SVA llvm (%)",
               "SVA Safe (%)"});
  for (const Case& c : cases) {
    // Interleaved trials across all four kernels; median per mode.
    std::vector<std::unique_ptr<BootedKernel>> kernels;
    std::vector<std::unique_ptr<Server>> servers;
    for (int m = 0; m < 4; ++m) {
      kernels.push_back(std::make_unique<BootedKernel>(kAllModes[m]));
      servers.push_back(std::make_unique<Server>(*kernels[m], c.size));
      (void)ServeKBps(*servers[m], c.size, c.requests / 4 + 1, c.cgi);
    }
    std::vector<double> samples[4];
    for (int rep = 0; rep < 9; ++rep) {
      for (int m = 0; m < 4; ++m) {
        samples[m].push_back(
            ServeKBps(*servers[m], c.size, c.requests, c.cgi));
      }
    }
    double kbps[4];
    for (int m = 0; m < 4; ++m) {
      std::sort(samples[m].begin(), samples[m].end());
      kbps[m] = samples[m][samples[m].size() / 2];
    }
    table.AddRow({c.name, Fmt("%.0f", kbps[0]),
                  Fmt("%.1f", -OverheadPct(kbps[0], kbps[1])),
                  Fmt("%.1f", -OverheadPct(kbps[0], kbps[2])),
                  Fmt("%.1f", -OverheadPct(kbps[0], kbps[3]))});
  }
  table.Print();
  std::printf(
      "\n(Positive = bandwidth reduction vs native.) Shape check: small "
      "files and CGI suffer\nmost under safety checks; large files "
      "amortize.\n");
}

}  // namespace
}  // namespace sva::bench

int main() {
  sva::bench::Run();
  return 0;
}
