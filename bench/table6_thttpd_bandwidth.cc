// Table 6 reproduction: "thttpd bandwidth reduction as a percentage of
// Linux native performance" — serving a 311-byte page, an 85 KB file, and
// a CGI-style request (fork/exec per request) over 25 concurrent stream
// connections.
//
// Unlike the earlier stub, every byte here really crosses the wire: the
// loopback client injects request frames through the virtual NIC, the
// kernel's net stack parses them into safety-checked packet buffers, and
// the served file goes back out as Ethernet/IPv4 stream frames that the
// client drains from the NIC tx queue and byte-checks.
//
// Expected shape: tiny-file serving suffers the most under safety checks
// (~33% reduction in the paper, ~22% for CGI); large files amortize the
// per-request cost (~2% in the paper). Here every frame pays its own
// packet-buffer registration and bounds check, so the large-file row
// amortizes the per-request cost but keeps a per-frame check floor the
// paper's DMA-dominated hardware did not show.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"
#include "src/net/client.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/drainer.h"
#include "src/trace/profiler.h"
#include "src/trace/trace.h"

namespace sva::bench {
namespace {

using kernel::Sys;

constexpr int kConnections = 25;
constexpr uint16_t kHttpPort = 80;

// Pre-opened server state per kernel: the served file, a listening socket
// on port 80, 25 accepted connections from the loopback client, and an
// event queue with every accepted connection registered — the serving loop
// discovers readable connections through kEvqWait, the way thttpd's
// select/poll loop does, instead of assuming the request landed on the
// connection it was just sent to.
struct Server {
  explicit Server(BootedKernel& kernel, uint64_t file_size)
      : k(kernel), client(*kernel.k().net()) {
    fd = k.OpenFile("/www/file");
    k.FillFile(fd, file_size);
    listener = k.Call(
        Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
    k.Call(Sys::kBind, listener, kHttpPort);
    evq = k.Call(Sys::kEvqCreate);
    for (int c = 0; c < kConnections; ++c) {
      auto conn = client.OpenStream(kHttpPort);
      if (!conn.ok()) {
        std::fprintf(stderr, "open stream: %s\n",
                     conn.status().ToString().c_str());
        std::exit(1);
      }
      conns.push_back(*conn);
      conn_fds.push_back(k.Call(Sys::kAccept, listener));
      // user_data = the client-side connection index, so one wait record
      // identifies both the server fd and the client handle to drain.
      k.Call(Sys::kEvqCtl, evq, kernel::kEvqCtlAdd, conn_fds.back(),
             static_cast<uint64_t>(c));
    }
  }

  // Blocks on the event queue and returns the client-side index of one
  // readable connection (its server fd is conn_fds[index]).
  size_t WaitReadable() {
    uint64_t n = k.Call(Sys::kEvqWait, evq, k.user(0x8000), 1,
                        /*timeout_us=*/1000000);
    if (n != 1) {
      std::fprintf(stderr, "evq_wait: no readable connection\n");
      std::exit(1);
    }
    uint8_t raw[16];
    Status s = k.k().PeekUser(k.user(0x8000), raw, sizeof(raw));
    if (!s.ok()) {
      std::fprintf(stderr, "peek event: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    uint64_t index;
    std::memcpy(&index, raw, 8);
    return static_cast<size_t>(index);
  }

  BootedKernel& k;
  net::LoopbackClient client;
  uint64_t fd = 0;
  uint64_t listener = 0;
  uint64_t evq = 0;
  std::vector<int> conns;          // Client-side connection handles.
  std::vector<uint64_t> conn_fds;  // Server-side accepted fds.
};

// Serves `file_size` bytes per request over `requests` requests round-robin
// across the connections; returns KB/s of payload moved over the NIC.
double ServeKBps(Server& server, uint64_t file_size, int requests,
                 bool cgi) {
  BootedKernel& k = server.k;
  const std::string request = "GET /www/file HTTP/1.0\r\n\r\n";
  uint64_t replied = 0;
  double us = TimeOnceUs([&] {
    for (int r = 0; r < requests; ++r) {
      size_t c = static_cast<size_t>(r) % server.conns.size();
      // The client puts the request on the wire; the rx interrupt path
      // delivers it into the accepted socket's queue.
      Status s = server.client.SendStream(server.conns[c], request);
      if (!s.ok()) {
        std::fprintf(stderr, "send request: %s\n", s.ToString().c_str());
        std::exit(1);
      }
      if (cgi) {
        // CGI: fork/exec a handler per request.
        uint64_t child = k.Call(Sys::kFork);
        (void)k.k().Yield();
        k.Call(Sys::kExecve, k.user(0));
        k.Call(Sys::kExit, 0);
        k.Call(Sys::kWaitPid, child);
      }
      // Server learns which connection became readable from the event
      // queue, reads the request off the wire, then streams the file back.
      size_t ready = server.WaitReadable();
      if (ready != c) {
        std::fprintf(stderr, "evq_wait: expected conn %zu, got %zu\n", c,
                     ready);
        std::exit(1);
      }
      k.Call(Sys::kRecv, server.conn_fds[c], k.user(16384), 128);
      k.Call(Sys::kLseek, server.fd, 0, 0);
      // Small responses go out in one send; large files stream in 16 KiB
      // chunks (large-file serving amortizes per-request costs, which is
      // exactly why the paper's 85 KB row barely degrades).
      uint64_t chunk_size = file_size <= 4096 ? file_size : 16 * 1024;
      for (uint64_t done = 0; done < file_size;) {
        uint64_t n = std::min<uint64_t>(chunk_size, file_size - done);
        k.Call(Sys::kRead, server.fd, k.user(16384), n);
        k.Call(Sys::kSend, server.conn_fds[c], k.user(16384), n);
        done += n;
      }
      // Client drains the reply frames from the NIC tx queue.
      replied += server.client.TakeStream(server.conns[c]).size();
    }
  });
  if (replied != file_size * static_cast<uint64_t>(requests)) {
    std::fprintf(stderr,
                 "client received %llu bytes, expected %llu\n",
                 static_cast<unsigned long long>(replied),
                 static_cast<unsigned long long>(file_size * requests));
    std::exit(1);
  }
  double bytes = static_cast<double>(file_size) * requests;
  return bytes / us * 1000.0;  // KB/s given us.
}

void Run(bool quick) {
  std::printf(
      "Table 6: thttpd-style bandwidth over the virtual NIC, "
      "%d concurrent connections\n\n",
      kConnections);
  struct Case {
    std::string name;
    uint64_t size;
    int requests;
    bool cgi;
  };
  const Case cases[] = {
      {"311 B", 311, 400, false},
      {"85 KB", 85 * 1024, 24, false},
      {"cgi (311 B)", 311, 250, true},
  };
  // --quick (CI / trace-validation runs): a handful of requests per case,
  // one rep — enough to exercise every code path without measuring.
  const int reps = quick ? 1 : 9;
  Table table({"Request", "Native (KB/s)", "SVA gcc (%)", "SVA llvm (%)",
               "SVA Safe (%)"});
  for (const Case& c : cases) {
    const int requests = quick ? std::max(4, c.requests / 50) : c.requests;
    // Interleaved trials across all four kernels; median per mode.
    std::vector<std::unique_ptr<BootedKernel>> kernels;
    std::vector<std::unique_ptr<Server>> servers;
    for (int m = 0; m < 4; ++m) {
      kernels.push_back(std::make_unique<BootedKernel>(kAllModes[m]));
      servers.push_back(std::make_unique<Server>(*kernels[m], c.size));
      (void)ServeKBps(*servers[m], c.size,
                      quick ? 2 : c.requests / 4 + 1, c.cgi);
    }
    std::vector<double> samples[4];
    for (int rep = 0; rep < reps; ++rep) {
      for (int m = 0; m < 4; ++m) {
        samples[m].push_back(
            ServeKBps(*servers[m], c.size, requests, c.cgi));
      }
    }
    double kbps[4];
    for (int m = 0; m < 4; ++m) {
      std::sort(samples[m].begin(), samples[m].end());
      kbps[m] = samples[m][samples[m].size() / 2];
    }
    table.AddRow({c.name, Fmt("%.0f", kbps[0]),
                  Fmt("%.1f", -OverheadPct(kbps[0], kbps[1])),
                  Fmt("%.1f", -OverheadPct(kbps[0], kbps[2])),
                  Fmt("%.1f", -OverheadPct(kbps[0], kbps[3]))});
    for (int m = 0; m < 4; ++m) {
      JsonReport::Get().Add(c.name, kbps[m], "KB/s",
                            kernel::KernelModeName(kAllModes[m]));
    }
  }
  table.Print();
  std::printf(
      "\n(Positive = bandwidth reduction vs native.) Shape check: tiny "
      "files suffer most under\nsafety checks; large files and CGI "
      "amortize per-request costs, though every frame\nstill pays its "
      "packet-buffer checks.\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  auto& report = sva::bench::JsonReport::Get();
  report.Init(&argc, argv, "table6_thttpd_bandwidth");
  // --trace-out: record the whole serving run (every layer from syscall
  // entry down to NIC DMA) into the per-CPU rings and export one
  // Perfetto-loadable Chrome trace. The continuous-drain consumer empties
  // the rings while the bench runs, so the export covers the whole run
  // instead of whatever the 8192-event rings still held at the end.
  sva::trace::ContinuousDrainer drainer;
  if (!report.trace_out().empty()) {
    sva::trace::Tracer::Get().Enable(sva::trace::kModeFull);
    drainer.Start();
  }
  // --profile: sample the serving run and export folded stacks. The whole
  // bench runs on one virtual CPU, so only CPU 0 is sampled; --quick runs
  // are short, so they sample at ~10 kHz to still collect a meaningful
  // profile (997 Hz — the production default — otherwise).
  if (!report.profile_out().empty()) {
    sva::trace::Profiler::Options popts;
    popts.hz = report.quick() ? 9973 : 997;
    popts.num_cpus = 1;
    if (!sva::trace::Profiler::Get().Start(popts)) {
      std::fprintf(stderr, "cannot start profiler\n");
      return 1;
    }
  }
  sva::bench::Run(report.quick());
  if (!report.profile_out().empty()) {
    sva::trace::Profiler& prof = sva::trace::Profiler::Get();
    prof.Stop();
    if (!prof.WriteFolded(report.profile_out())) {
      std::fprintf(stderr, "cannot write profile to %s\n",
                   report.profile_out().c_str());
      return 1;
    }
    sva::trace::Profiler::Stats pstats = prof.stats();
    std::fprintf(stderr,
                 "wrote folded stacks to %s (%llu samples, %llu lost)\n",
                 report.profile_out().c_str(),
                 static_cast<unsigned long long>(pstats.samples),
                 static_cast<unsigned long long>(pstats.lost));
  }
  if (!report.trace_out().empty()) {
    sva::trace::Tracer& tracer = sva::trace::Tracer::Get();
    tracer.Disable();
    std::vector<sva::trace::Event> events = drainer.Stop();
    sva::Status written =
        sva::trace::WriteChromeTrace(report.trace_out(), events);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace events to %s (%llu lost)\n",
                 events.size(), report.trace_out().c_str(),
                 static_cast<unsigned long long>(tracer.events_lost()));
  }
  return report.Finish();
}
