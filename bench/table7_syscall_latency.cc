// Table 7 reproduction: "Latency increase for raw kernel operations as a
// percentage of Linux native performance" — the HBench-OS raw syscall
// latency microbenchmarks (getpid, getrusage, gettimeofday, open/close,
// sbrk, sigaction, write, pipe, fork, fork/exec) across the four kernel
// configurations.
//
// Expected shape (paper): SVA-OS entry cost dominates trivial syscalls
// (getpid ~21-29%); run-time checks dominate allocation/copy-heavy ones
// (open/close 386%, pipe 280%, sigaction 123%, fork 74%).
#include <cstdio>
#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"

namespace sva::bench {
namespace {

using kernel::Sys;

struct MicroBench {
  std::string name;
  // Runs one iteration of the operation against the booted kernel.
  std::function<void(BootedKernel&)> op;
  int iters = 200;
};

std::vector<MicroBench> BuildBenches() {
  std::vector<MicroBench> benches;
  benches.push_back({"getpid",
                     [](BootedKernel& k) { k.Call(Sys::kGetPid); }, 400});
  benches.push_back({"getrusage",
                     [](BootedKernel& k) {
                       k.Call(Sys::kGetRusage, k.user(512));
                     },
                     300});
  benches.push_back({"gettimeofday",
                     [](BootedKernel& k) {
                       k.Call(Sys::kGetTimeOfDay, k.user(512));
                     },
                     300});
  benches.push_back({"open/close",
                     [](BootedKernel& k) {
                       uint64_t fd = k.Call(Sys::kOpen, k.user(0), 1);
                       k.Call(Sys::kClose, fd);
                     },
                     200});
  benches.push_back({"sbrk",
                     [](BootedKernel& k) { k.Call(Sys::kBrk, 0); }, 400});
  benches.push_back({"sigaction",
                     [](BootedKernel& k) {
                       k.Call(Sys::kSigaction, 12, 5);
                     },
                     300});
  benches.push_back({"write (/dev/null)",
                     [](BootedKernel& k) {
                       k.Call(Sys::kWrite, 0, k.user(1024), 64);
                     },
                     300});
  benches.push_back({"pipe (create+rw+close)",
                     [](BootedKernel& k) {
                       k.Call(Sys::kPipe, k.user(128));
                       uint32_t fds[2];
                       (void)k.k().PeekUser(k.user(128), fds, 8);
                       k.Call(Sys::kWrite, fds[1], k.user(1024), 512);
                       k.Call(Sys::kRead, fds[0], k.user(2048), 512);
                       k.Call(Sys::kClose, fds[0]);
                       k.Call(Sys::kClose, fds[1]);
                     },
                     80});
  benches.push_back({"fork (+reap)",
                     [](BootedKernel& k) {
                       uint64_t child = k.Call(Sys::kFork);
                       (void)k.k().Yield();
                       k.Call(Sys::kExit, 0);
                       k.Call(Sys::kWaitPid, child);
                     },
                     60});
  benches.push_back({"fork/exec (+reap)",
                     [](BootedKernel& k) {
                       uint64_t child = k.Call(Sys::kFork);
                       (void)k.k().Yield();
                       k.Call(Sys::kExecve, k.user(0));
                       k.Call(Sys::kExit, 0);
                       k.Call(Sys::kWaitPid, child);
                     },
                     60});
  return benches;
}

void Run() {
  std::printf(
      "Table 7: latency of raw kernel operations (HBench-OS style; median "
      "of 50 trials)\n\n");
  Table table({"Test", "Native (us)", "SVA gcc (%)", "SVA llvm (%)",
               "SVA Safe (%)"});
  for (const MicroBench& bench : BuildBenches()) {
    // Boot all four kernels and interleave their trials so environmental
    // drift (frequency scaling, cache state) averages out across modes.
    std::vector<std::unique_ptr<BootedKernel>> kernels;
    for (int m = 0; m < 4; ++m) {
      kernels.push_back(std::make_unique<BootedKernel>(kAllModes[m]));
      BootedKernel& k = *kernels.back();
      (void)k.k().PokeUserString(k.user(0), "/dev/null");
      (void)k.Call(Sys::kOpen, k.user(0), 0);  // fd 0: /dev/null sink.
      for (int warm = 0; warm < 20; ++warm) {
        bench.op(k);  // Warm allocator slabs and splay trees.
      }
    }
    std::vector<double> samples[4];
    for (int rep = 0; rep < 50; ++rep) {
      for (int m = 0; m < 4; ++m) {
        BootedKernel& k = *kernels[m];
        double t = TimeOnceUs([&] {
          for (int i = 0; i < bench.iters; ++i) {
            bench.op(k);
          }
        });
        samples[m].push_back(t / bench.iters);
      }
    }
    double us[4];
    for (int m = 0; m < 4; ++m) {
      std::sort(samples[m].begin(), samples[m].end());
      us[m] = samples[m][samples[m].size() / 2];
    }
    table.AddRow({bench.name, Fmt("%.3f", us[0]),
                  Fmt("%.1f", OverheadPct(us[0], us[1])),
                  Fmt("%.1f", OverheadPct(us[0], us[2])),
                  Fmt("%.1f", OverheadPct(us[0], us[3]))});
    for (int m = 0; m < 4; ++m) {
      JsonReport::Get().Add(bench.name, us[m], "us",
                            kernel::KernelModeName(kAllModes[m]));
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: SVA-OS cost dominates trivial calls; safety "
      "checks dominate\nallocation- and copy-heavy calls (open/close, pipe, "
      "fork).\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "table7_syscall_latency");
  sva::bench::Run();
  return sva::bench::JsonReport::Get().Finish();
}
