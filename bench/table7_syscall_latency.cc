// Table 7 reproduction: "Latency increase for raw kernel operations as a
// percentage of Linux native performance" — the HBench-OS raw syscall
// latency microbenchmarks (getpid, getrusage, gettimeofday, open/close,
// sbrk, sigaction, write, pipe, fork, fork/exec) across the four kernel
// configurations.
//
// Expected shape (paper): SVA-OS entry cost dominates trivial syscalls
// (getpid ~21-29%); run-time checks dominate allocation/copy-heavy ones
// (open/close 386%, pipe 280%, sigaction 123%, fork 74%).
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"
#include "src/safety/compiler.h"
#include "src/trace/profiler.h"
#include "src/svm/svm.h"
#include "src/verifier/typechecker.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::bench {
namespace {

using kernel::Sys;

struct MicroBench {
  std::string name;
  // Runs one iteration of the operation against the booted kernel.
  std::function<void(BootedKernel&)> op;
  int iters = 200;
};

std::vector<MicroBench> BuildBenches() {
  std::vector<MicroBench> benches;
  benches.push_back({"getpid",
                     [](BootedKernel& k) { k.Call(Sys::kGetPid); }, 400});
  benches.push_back({"getrusage",
                     [](BootedKernel& k) {
                       k.Call(Sys::kGetRusage, k.user(512));
                     },
                     300});
  benches.push_back({"gettimeofday",
                     [](BootedKernel& k) {
                       k.Call(Sys::kGetTimeOfDay, k.user(512));
                     },
                     300});
  benches.push_back({"open/close",
                     [](BootedKernel& k) {
                       uint64_t fd = k.Call(Sys::kOpen, k.user(0), 1);
                       k.Call(Sys::kClose, fd);
                     },
                     200});
  benches.push_back({"sbrk",
                     [](BootedKernel& k) { k.Call(Sys::kBrk, 0); }, 400});
  benches.push_back({"sigaction",
                     [](BootedKernel& k) {
                       k.Call(Sys::kSigaction, 12, 5);
                     },
                     300});
  benches.push_back({"write (/dev/null)",
                     [](BootedKernel& k) {
                       k.Call(Sys::kWrite, 0, k.user(1024), 64);
                     },
                     300});
  benches.push_back({"pipe (create+rw+close)",
                     [](BootedKernel& k) {
                       k.Call(Sys::kPipe, k.user(128));
                       uint32_t fds[2];
                       (void)k.k().PeekUser(k.user(128), fds, 8);
                       k.Call(Sys::kWrite, fds[1], k.user(1024), 512);
                       k.Call(Sys::kRead, fds[0], k.user(2048), 512);
                       k.Call(Sys::kClose, fds[0]);
                       k.Call(Sys::kClose, fds[1]);
                     },
                     80});
  benches.push_back({"fork (+reap)",
                     [](BootedKernel& k) {
                       uint64_t child = k.Call(Sys::kFork);
                       (void)k.k().Yield();
                       k.Call(Sys::kExit, 0);
                       k.Call(Sys::kWaitPid, child);
                     },
                     60});
  benches.push_back({"fork/exec (+reap)",
                     [](BootedKernel& k) {
                       uint64_t child = k.Call(Sys::kFork);
                       (void)k.k().Yield();
                       k.Call(Sys::kExecve, k.user(0));
                       k.Call(Sys::kExit, 0);
                       k.Call(Sys::kWaitPid, child);
                     },
                     60});
  return benches;
}

// A syscall-shaped bytecode workload for the execution-tier comparison:
// allocate a kernel object, copy through it byte-by-byte (every access
// load/store-checked against the metapool), then free it — the same
// alloc + copy + free shape that dominates open/close and pipe in the
// kernel table above, but expressed as verified SVA bytecode so it runs on
// the SVM's execution tiers.
constexpr char kBytecodeSyscall[] = R"(
module "table7_bytecode"
declare i8* @kmalloc(i64)
declare void @kfree(i8*)

define i64 @syscall_like(i64 %len) {
entry:
  %buf = call i8* @kmalloc(i64 256)
  br label %copy
copy:
  %i = phi i64 [ 0, %entry ], [ %i2, %copy ]
  %sum = phi i64 [ 0, %entry ], [ %sum2, %copy ]
  %src = getelementptr i8* %buf, i64 %i
  %b = load i8, i8* %src
  %off = add i64 %i, 128
  %dst = getelementptr i8* %buf, i64 %off
  store i8 %b, i8* %dst
  %wide = zext i8 %b to i64
  %sum2 = add i64 %sum, %wide
  %i2 = add i64 %i, 1
  %done = icmp uge i64 %i2, %len
  br i1 %done, label %exit, label %copy
exit:
  call void @kfree(i8* %buf)
  ret i64 %sum2
}
)";

// The full pipeline (safety compiler -> verifier -> type check -> SVM), so
// the workload carries the instrumented pchk.* checks like real kernel
// bytecode.
std::unique_ptr<svm::LoadedModule> LoadTierModule(const char* text,
                                                  svm::ExecTier tier) {
  auto fatal = [](const char* stage, const Status& s) {
    std::fprintf(stderr, "table7: bytecode %s failed: %s\n", stage,
                 s.ToString().c_str());
    std::exit(1);
  };
  auto parsed = vir::ParseModule(text);
  if (!parsed.ok()) fatal("parse", parsed.status());
  auto module = std::move(*parsed);
  safety::SafetyCompilerOptions copts;
  auto report = safety::RunSafetyCompiler(*module, copts);
  if (!report.ok()) fatal("safety compile", report.status());
  Status verified = vir::VerifyModule(*module);
  if (!verified.ok()) fatal("verify", verified);
  Status typed = verifier::TypeCheckOrError(*module);
  if (!typed.ok()) fatal("type check", typed);
  svm::SvmOptions options;
  options.interp.tier = tier;
  svm::SecureVirtualMachine vm(options);
  auto loaded = vm.LoadModule(std::move(module));
  if (!loaded.ok()) fatal("load", loaded.status());
  return std::move(*loaded);
}

// Runs the bytecode workload on one execution tier (safe mode: all checks
// enforced) and returns the median per-call latency in microseconds.
double TimeBytecodeTier(svm::ExecTier tier, int reps, int iters) {
  std::unique_ptr<svm::LoadedModule> loaded =
      LoadTierModule(kBytecodeSyscall, tier);
  auto call_once = [&] {
    svm::ExecResult r = loaded->Run("syscall_like", {64});
    if (!r.status.ok()) {
      std::fprintf(stderr, "table7: bytecode run failed: %s\n",
                   r.status.ToString().c_str());
      std::exit(1);
    }
  };
  for (int warm = 0; warm < 20; ++warm) {
    call_once();  // Warm allocator slabs, splay trees, and the decoder.
  }
  return MedianLatencyUs(reps, iters, call_once);
}

// The execution-tier comparison the threaded-code tier is gated on
// (tools/check-tier-speedup): the same safe-mode workload, interpreter vs
// threaded dispatch.
void RunTierComparison() {
  bool quick = JsonReport::Get().quick();
  int reps = quick ? 9 : 31;
  int iters = quick ? 40 : 200;
  double interp_us = TimeBytecodeTier(svm::ExecTier::kInterp, reps, iters);
  double threaded_us =
      TimeBytecodeTier(svm::ExecTier::kThreaded, reps, iters);
  std::printf(
      "\nExecution tiers on the syscall-shaped bytecode workload (SVA safe "
      "mode,\nmedian of %d trials):\n\n", reps);
  Table table({"Engine", "Latency (us/call)", "Speedup"});
  table.AddRow({"interpreter", Fmt("%.3f", interp_us), "1.00x"});
  table.AddRow({"threaded", Fmt("%.3f", threaded_us),
                Fmt("%.2fx", threaded_us <= 0 ? 0 : interp_us / threaded_us)});
  table.Print();
  JsonReport::Get().Add("bytecode_syscall", interp_us, "us", "tier-interp");
  JsonReport::Get().Add("bytecode_syscall", threaded_us, "us",
                        "tier-threaded");
}

void Run() {
  std::printf(
      "Table 7: latency of raw kernel operations (HBench-OS style; median "
      "of 50 trials)\n\n");
  Table table({"Test", "Native (us)", "SVA gcc (%)", "SVA llvm (%)",
               "SVA Safe (%)"});
  for (const MicroBench& bench : BuildBenches()) {
    // Boot all four kernels and interleave their trials so environmental
    // drift (frequency scaling, cache state) averages out across modes.
    std::vector<std::unique_ptr<BootedKernel>> kernels;
    for (int m = 0; m < 4; ++m) {
      kernels.push_back(std::make_unique<BootedKernel>(kAllModes[m]));
      BootedKernel& k = *kernels.back();
      (void)k.k().PokeUserString(k.user(0), "/dev/null");
      (void)k.Call(Sys::kOpen, k.user(0), 0);  // fd 0: /dev/null sink.
      for (int warm = 0; warm < 20; ++warm) {
        bench.op(k);  // Warm allocator slabs and splay trees.
      }
    }
    std::vector<double> samples[4];
    for (int rep = 0; rep < 50; ++rep) {
      for (int m = 0; m < 4; ++m) {
        BootedKernel& k = *kernels[m];
        double t = TimeOnceUs([&] {
          for (int i = 0; i < bench.iters; ++i) {
            bench.op(k);
          }
        });
        samples[m].push_back(t / bench.iters);
      }
    }
    double us[4];
    for (int m = 0; m < 4; ++m) {
      std::sort(samples[m].begin(), samples[m].end());
      us[m] = samples[m][samples[m].size() / 2];
    }
    table.AddRow({bench.name, Fmt("%.3f", us[0]),
                  Fmt("%.1f", OverheadPct(us[0], us[1])),
                  Fmt("%.1f", OverheadPct(us[0], us[2])),
                  Fmt("%.1f", OverheadPct(us[0], us[3]))});
    for (int m = 0; m < 4; ++m) {
      JsonReport::Get().Add(bench.name, us[m], "us",
                            kernel::KernelModeName(kAllModes[m]));
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: SVA-OS cost dominates trivial calls; safety "
      "checks dominate\nallocation- and copy-heavy calls (open/close, pipe, "
      "fork).\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  auto& report = sva::bench::JsonReport::Get();
  report.Init(&argc, argv, "table7_syscall_latency");
  // --tier-only: just the execution-tier comparison (the CI speedup gate
  // runs this so it never pays for the full four-kernel table).
  bool tier_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tier-only") == 0) {
      tier_only = true;
    }
  }
  // --profile: sample the whole run (single-CPU bench) and export folded
  // stacks plus a top-5 attribution block in the JSON report.
  if (!report.profile_out().empty()) {
    sva::trace::Profiler::Options popts;
    popts.num_cpus = 1;
    if (!sva::trace::Profiler::Get().Start(popts)) {
      std::fprintf(stderr, "cannot start profiler\n");
      return 1;
    }
  }
  if (!tier_only) {
    sva::bench::Run();
  }
  sva::bench::RunTierComparison();
  if (!report.profile_out().empty()) {
    sva::trace::Profiler& prof = sva::trace::Profiler::Get();
    prof.Stop();
    if (!prof.WriteFolded(report.profile_out())) {
      std::fprintf(stderr, "cannot write profile to %s\n",
                   report.profile_out().c_str());
      return 1;
    }
    report.Add("prof samples", static_cast<double>(prof.stats().samples),
               "samples");
    for (const auto& [stack, count] : prof.TopStacks(5)) {
      report.Add("prof top stack", static_cast<double>(count), "samples",
                 stack);
    }
  }
  return report.Finish();
}
