// Section 5 reproduction: the trusted-computing-base experiment. The paper
// injected 20 bugs — 5 instances each of 4 kinds — into the pointer
// analysis results and showed the bytecode verifier (the small type
// checker that IS in the TCB) catches all 20, demonstrating that the
// complex safety-checking compiler can stay outside the TCB.
#include <cstdio>

#include "bench/common.h"
#include "src/corpus/corpus.h"
#include "src/safety/compiler.h"
#include "src/verifier/injector.h"
#include "src/verifier/typechecker.h"
#include "src/vir/parser.h"

namespace sva::bench {
namespace {

std::unique_ptr<vir::Module> FreshCompiledModule() {
  auto m = vir::ParseModule(corpus::KernelCorpusText(true));
  if (!m.ok()) {
    std::fprintf(stderr, "corpus parse failed: %s\n",
                 m.status().ToString().c_str());
    std::exit(1);
  }
  safety::SafetyCompilerOptions options;
  options.analysis = corpus::CorpusConfig(true);
  auto report = safety::RunSafetyCompiler(**m, options);
  if (!report.ok()) {
    std::fprintf(stderr, "safety compiler failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(m).value();
}

void Run() {
  std::printf(
      "Bytecode verifier vs injected pointer-analysis bugs (Section 5)\n\n");
  // Sanity: the untampered module type-checks.
  {
    auto clean = FreshCompiledModule();
    auto result = verifier::TypeCheckModule(*clean);
    std::printf("clean compiler output type-checks: %s\n\n",
                result.ok ? "yes" : "NO (broken setup)");
  }

  Table table({"Bug kind", "Seed 1", "Seed 2", "Seed 3", "Seed 4", "Seed 5",
               "Caught"});
  int total_caught = 0;
  int total_injected = 0;
  for (int kind_index = 0; kind_index < 4; ++kind_index) {
    auto kind = static_cast<verifier::BugKind>(kind_index);
    std::vector<std::string> cells = {verifier::BugKindName(kind)};
    int caught = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      auto m = FreshCompiledModule();
      Status injected = verifier::InjectBug(*m, kind, seed);
      if (!injected.ok()) {
        cells.push_back("no-site");
        continue;
      }
      ++total_injected;
      auto result = verifier::TypeCheckModule(*m);
      bool detected = !result.ok;
      cells.push_back(detected ? "caught" : "MISSED");
      if (detected) {
        ++caught;
        ++total_caught;
      }
    }
    cells.push_back(Fmt("%.0f/5", static_cast<double>(caught)));
    table.AddRow(cells);
  }
  table.Print();
  std::printf("\n=> verifier caught %d / %d injected bugs (paper: 20 / 20)\n",
              total_caught, total_injected);
  JsonReport::Get().Add("bugs_injected", total_injected, "count");
  JsonReport::Get().Add("bugs_caught", total_caught, "count");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "verifier_injection");
  sva::bench::Run();
  return sva::bench::JsonReport::Get().Finish();
}
