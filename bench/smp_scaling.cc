// SMP scaling microbenchmark: how the sharded metapool runtime behaves when
// run-time checks arrive from many virtual CPUs at once.
//
// Four phases:
//   1. Check throughput on one SHARED MetaPoolRuntime at 1/2/4/8 worker
//      threads (checks/sec, ns/check, measured speedup, and the measured
//      lock-free fraction — the share of lookups absorbed by the per-thread
//      cache without touching a stripe lock).
//   2. The same with a register/drop mutation mix, exercising the stripe
//      locks and generation invalidation under contention.
//   3. The minikernel syscall driver at 1/2/4/8 workers running a mixed
//      tasks+vfs workload — since the big-kernel-lock split (PRs 3-5) this
//      phase scales with workers too: syscalls dispatch onto per-subsystem
//      leaf locks (docs/CONCURRENCY.md), and the `sva_*_lock_wait_ns`
//      histograms attribute any remaining serialization.
//   4. A read-mostly syscall mix (stat / getpid / lseek-SEEK_CUR): every
//      call resolves fds and paths through the epoch-protected structures
//      of docs/CONCURRENCY.md §5 and takes no kernel lock at any rank, so
//      this phase is the scaling headline (tools/check-smp-scaling gates
//      it at >= 2.5x for 4 workers on hosts with >= 4 hardware threads).
//   5. Detection parity: the Section 7.2 exploit suite run single-threaded
//      and as 8 concurrent worker replicas must catch exactly the same
//      exploits (concurrency must never change what the checks detect).
//
// Flags: --cpus N caps the worker counts swept (default 8); --quick shrinks
// iteration counts to CI size; --json PATH emits machine-readable records
// (tools/check-smp-scaling gates on the kernel-phase speedup).
//
// Note on measured speedup: the wall-clock numbers depend on how many
// hardware threads the host actually has. On a single-core host every
// configuration timeshares one CPU and measured speedup stays ~1x, so the
// bench also reports the Amdahl projection derived from the measured
// lock-free fraction p: projected speedup at N threads = 1 / ((1-p) + p/N).
#include <atomic>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"
#include "src/exploits/exploits.h"
#include "src/runtime/metapool_runtime.h"
#include "src/smp/percpu.h"

namespace sva::bench {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};
constexpr uint64_t kObjectsPerThread = 64;
constexpr uint64_t kObjectSize = 256;

// --cpus cap (default: the full sweep) and --quick sizing, set in main.
unsigned g_max_workers = 8;
uint64_t g_checks_per_thread = 400000;
uint64_t g_calls_per_worker = 20000;

std::vector<unsigned> ThreadCounts() {
  std::vector<unsigned> counts;
  for (unsigned threads : kThreadCounts) {
    if (threads <= g_max_workers) {
      counts.push_back(threads);
    }
  }
  if (counts.empty()) {
    counts.push_back(1);
  }
  return counts;
}

// Per-thread address region: disjoint windows so worker working sets land on
// different stripes, the way per-CPU slabs do in a real kernel.
uint64_t ObjectBase(unsigned thread, uint64_t index) {
  return 0x100000000ull + (static_cast<uint64_t>(thread) << 24) +
         index * 0x1000;
}

struct ScalingSample {
  unsigned threads = 0;
  double seconds = 0;
  uint64_t checks = 0;
  double lock_free_fraction = 0;
};

// Runs `threads` workers against one shared runtime; each worker issues
// lscheck/boundscheck pairs over its own pre-registered objects, plus (when
// `mutate`) a register/drop pair every 64 iterations.
ScalingSample RunScaling(unsigned threads, bool mutate) {
  runtime::MetaPoolRuntime rt;
  runtime::MetaPool* pool = rt.CreatePool("smp_bench", true, kObjectSize,
                                          /*complete=*/true);
  for (unsigned t = 0; t < threads; ++t) {
    for (uint64_t i = 0; i < kObjectsPerThread; ++i) {
      Status s = rt.RegisterObject(*pool, ObjectBase(t, i), kObjectSize);
      assert(s.ok());
      (void)s;
    }
  }
  rt.ResetStats();
  pool->ResetStats();

  std::atomic<uint64_t> failures{0};
  auto worker = [&](unsigned t) {
    smp::ScopedCpu bind(t);
    uint64_t scratch_base = ObjectBase(t, kObjectsPerThread + 8);
    for (uint64_t i = 0; i < g_checks_per_thread; ++i) {
      // Copy-loop-shaped stream: kObjectSize consecutive checks against one
      // object before moving to the next, the access skew the per-thread
      // cache is built for (SAFECode's observation about kernel checks).
      uint64_t base = ObjectBase(t, (i / kObjectSize) % kObjectsPerThread);
      if (!rt.LoadStoreCheck(*pool, base + (i % kObjectSize)).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      if (!rt.BoundsCheck(*pool, base, base + kObjectSize - 1).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      if (mutate && (i % 64) == 0) {
        (void)rt.RegisterObject(*pool, scratch_base, kObjectSize);
        (void)rt.DropObject(*pool, scratch_base);
      }
    }
  };

  double us = TimeOnceUs([&] {
    std::vector<std::thread> pool_workers;
    pool_workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool_workers.emplace_back(worker, t);
    }
    for (std::thread& w : pool_workers) {
      w.join();
    }
  });

  const runtime::CheckStats& stats = rt.stats();
  ScalingSample sample;
  sample.threads = threads;
  sample.seconds = us / 1e6;
  sample.checks = stats.total_performed();
  uint64_t lookups = stats.cache_hits + stats.cache_misses;
  sample.lock_free_fraction =
      lookups == 0 ? 0 : static_cast<double>(stats.cache_hits) / lookups;
  if (failures.load() != 0) {
    std::fprintf(stderr, "smp_scaling: %llu unexpected check failures\n",
                 static_cast<unsigned long long>(failures.load()));
    std::exit(1);
  }
  return sample;
}

void PrintScalingTable(const char* title, bool mutate) {
  std::printf("%s\n\n", title);
  std::vector<ScalingSample> samples;
  for (unsigned threads : ThreadCounts()) {
    samples.push_back(RunScaling(threads, mutate));
  }
  double base_rate = samples[0].checks / samples[0].seconds;
  Table table({"Threads", "Checks/sec", "ns/check", "Speedup", "Lock-free",
               "Amdahl proj."});
  for (const ScalingSample& s : samples) {
    double rate = s.checks / s.seconds;
    double per_thread_ns =
        s.seconds * 1e9 * s.threads / static_cast<double>(s.checks);
    double p = s.lock_free_fraction;
    double projected = 1.0 / ((1.0 - p) + p / s.threads);
    table.AddRow({std::to_string(s.threads), Fmt("%.2fM", rate / 1e6),
                  Fmt("%.1f", per_thread_ns), Fmt("%.2fx", rate / base_rate),
                  Fmt("%.1f%%", 100.0 * p), Fmt("%.2fx", projected)});
    JsonReport::Get().Add(std::string(title) + " checks/sec", rate,
                          "checks/s", "", s.threads);
  }
  table.Print();
  std::printf("\n");
}

void KernelSyscallPhase() {
  std::printf(
      "Minikernel syscall driver (post-BKL-split: tasks+vfs mixed workload "
      "on per-subsystem leaf locks)\n\n");
  Table table({"Workers", "Syscalls/sec", "us/syscall", "Speedup"});
  double base_rate = 0;
  for (unsigned threads : ThreadCounts()) {
    BootedKernel booted(kernel::KernelMode::kSvaSafe);
    // One regular file per worker, opened up front from the driver thread:
    // the workers all run as pid 1, so the fds land in one shared fd table.
    std::vector<uint64_t> fds;
    for (unsigned t = 0; t < threads; ++t) {
      fds.push_back(booted.OpenFile("/bench/worker" + std::to_string(t)));
      booted.Call(kernel::Sys::kWrite, fds.back(), booted.user(4096), 1024);
    }
    const uint64_t calls_per_worker = g_calls_per_worker;
    double us = TimeOnceUs([&] {
      booted.RunWorkers(threads, [&](unsigned t) {
        // The mix: mostly tasks-route calls (getpid/brk — the fork/exit
        // family's lock path without the allocation noise), with a vfs
        // read+seek every 8th iteration so both split-off subsystems are
        // on the clock. 4 syscalls per iteration amortized over 8
        // iterations: 2*8 + 2 = 18 calls per 8 iterations.
        uint64_t ubuf = booted.user(8192 + t * 512);
        for (uint64_t i = 0; i < calls_per_worker; ++i) {
          booted.Call(kernel::Sys::kGetPid);
          booted.Call(kernel::Sys::kBrk, 0);
          if (i % 8 == 0) {
            booted.Call(kernel::Sys::kLseek, fds[t], 0, 0);
            booted.Call(kernel::Sys::kRead, fds[t], ubuf, 256);
          }
        }
      });
    });
    uint64_t per_worker = 2 * calls_per_worker + 2 * (calls_per_worker / 8);
    double total = static_cast<double>(per_worker) * threads;
    double rate = total / us * 1e6;
    if (base_rate == 0) {
      base_rate = rate;
    }
    table.AddRow({std::to_string(threads), Fmt("%.2fM", total / us),
                  Fmt("%.3f", us / total), Fmt("%.2fx", rate / base_rate)});
    JsonReport::Get().Add("kernel syscalls/sec", rate, "calls/s", "sva-safe",
                          threads);
  }
  table.Print();
  std::printf("\n");
}

void ReadMostlyPhase() {
  std::printf(
      "Read-mostly phase: stat/getpid/fd-lookup mix on epoch-protected "
      "structures\n\n");
  Table table({"Workers", "Syscalls/sec", "us/syscall", "Speedup"});
  double base_rate = 0;
  for (unsigned threads : ThreadCounts()) {
    BootedKernel booted(kernel::KernelMode::kSvaSafe);
    // Per-worker file with some data, plus a per-worker copy of its path
    // staged in user memory for kStat. The loop body resolves fds through
    // the epoch-published fd table, paths through the epoch-published
    // directory index, and the stat argument through the userspace bounds
    // check — no kernel-policy lock at any rank (docs/CONCURRENCY.md §5).
    std::vector<uint64_t> fds;
    std::vector<uint64_t> paths;
    for (unsigned t = 0; t < threads; ++t) {
      std::string path = "/bench/ro" + std::to_string(t);
      fds.push_back(booted.OpenFile(path));
      booted.Call(kernel::Sys::kWrite, fds.back(), booted.user(4096), 1024);
      uint64_t path_uaddr = booted.user(16384 + t * 128);
      Status s = booted.k().PokeUserString(path_uaddr, path);
      assert(s.ok());
      (void)s;
      paths.push_back(path_uaddr);
    }
    const uint64_t calls_per_worker = g_calls_per_worker;
    double us = TimeOnceUs([&] {
      booted.RunWorkers(threads, [&](unsigned t) {
        for (uint64_t i = 0; i < calls_per_worker; ++i) {
          booted.Call(kernel::Sys::kStat, paths[t]);
          booted.Call(kernel::Sys::kGetPid);
          // lseek(fd, 0, SEEK_CUR): the lock-free fd->offset read.
          booted.Call(kernel::Sys::kLseek, fds[t], 0, 1);
        }
      });
    });
    double total = 3.0 * static_cast<double>(calls_per_worker) * threads;
    double rate = total / us * 1e6;
    if (base_rate == 0) {
      base_rate = rate;
    }
    table.AddRow({std::to_string(threads), Fmt("%.2fM", total / us),
                  Fmt("%.3f", us / total), Fmt("%.2fx", rate / base_rate)});
    JsonReport::Get().Add("readmostly syscalls/sec", rate, "calls/s",
                          "sva-safe", threads);
  }
  table.Print();
  std::printf("\n");
}

// Runs the five-exploit suite once on the calling thread; returns the caught
// bitmap (bit i = scenario i stopped by the checks).
uint32_t RunExploitSuite() {
  uint32_t caught = 0;
  const auto& scenarios = exploits::AllScenarios();
  for (size_t i = 0; i < scenarios.size(); ++i) {
    auto result = exploits::RunScenario(scenarios[i]);
    if (!result.ok()) {
      std::fprintf(stderr, "smp_scaling: exploit pipeline failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (result->caught) {
      caught |= 1u << i;
    }
  }
  return caught;
}

void DetectionParityPhase() {
  std::printf("Detection parity: exploit suite, 1 thread vs 8 replicas\n\n");
  uint32_t serial = RunExploitSuite();

  constexpr unsigned kReplicas = 8;
  std::vector<uint32_t> parallel(kReplicas, 0);
  std::vector<std::thread> workers;
  workers.reserve(kReplicas);
  for (unsigned t = 0; t < kReplicas; ++t) {
    workers.emplace_back([t, &parallel] {
      smp::ScopedCpu bind(t);
      parallel[t] = RunExploitSuite();
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  bool ok = true;
  for (unsigned t = 0; t < kReplicas; ++t) {
    if (parallel[t] != serial) {
      ok = false;
      std::printf("  replica %u caught bitmap 0x%x != serial 0x%x\n", t,
                  parallel[t], serial);
    }
  }
  std::printf("=> serial caught bitmap 0x%x; %u concurrent replicas %s\n\n",
              serial, kReplicas,
              ok ? "identical (PARITY OK)" : "DIVERGED (FAILURE)");
  if (!ok) {
    std::exit(1);
  }
}

void Run() {
  std::printf("SMP scaling: sharded metapool runtime under concurrent "
              "checks\n");
  std::printf("Host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  PrintScalingTable("Phase 1: shared runtime, check-only workload", false);
  PrintScalingTable("Phase 2: shared runtime, checks + register/drop mix",
                    true);
  KernelSyscallPhase();
  ReadMostlyPhase();
  DetectionParityPhase();
  std::printf(
      "The lock-free column is the measured fraction of lookups served by "
      "the\nper-thread cache with no stripe lock taken; on hosts with fewer "
      "hardware\nthreads than workers, measured speedup is capped by the "
      "hardware and the\nAmdahl column is the projection at full "
      "parallelism.\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "smp_scaling");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
      unsigned long cpus = std::strtoul(argv[++i], nullptr, 10);
      if (cpus >= 1 && cpus <= 16) {
        sva::bench::g_max_workers = static_cast<unsigned>(cpus);
      }
    }
  }
  if (sva::bench::JsonReport::Get().quick()) {
    // CI sizing: exercise every phase and keep the speedup measurement
    // meaningful without taking minutes on small hosts.
    sva::bench::g_checks_per_thread = 50000;
    sva::bench::g_calls_per_worker = 4000;
  }
  sva::bench::Run();
  return sva::bench::JsonReport::Get().Finish();
}
