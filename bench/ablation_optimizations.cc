// Ablation bench for the design choices and the Section 7.1.3 planned
// optimizations:
//
//  * splay-tree bounds check vs direct ("fat-pointer"-style) bounds check
//    — optimization 1 of Section 7.1.3;
//  * static elision of provably-safe GEP checks — optimization 3;
//  * skipping load-store checks on type-homogeneous pools — the core
//    SAFECode design choice that makes partitioning pay off;
//  * splay lookup cost as the pool's object count grows.
//
// Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "bench/common.h"

#include "src/runtime/metapool_runtime.h"
#include "src/safety/compiler.h"
#include "src/svm/svm.h"
#include "src/vir/parser.h"

namespace sva::bench {
namespace {

// --- Runtime-level ablations ----------------------------------------------------

// Shared body for the splay-vs-cache bounds check ablation. The probe
// rotates over a few objects to defeat pure splay-root hits while keeping
// locality realistic; with the lookup cache enabled both hot objects fit
// in the 4-way cache, so most checks never reach the tree.
void BoundsCheckSplayBody(benchmark::State& state, bool use_cache) {
  runtime::MetaPoolRuntime rt;
  rt.set_lookup_cache_enabled(use_cache);
  runtime::MetaPool* pool = rt.CreatePool("MP", false, 0, true);
  const int64_t objects = state.range(0);
  for (int64_t i = 0; i < objects; ++i) {
    (void)rt.RegisterObject(*pool, 0x10000 + static_cast<uint64_t>(i) * 256,
                            128);
  }
  rt.ResetStats();
  uint64_t base = 0x10000 + static_cast<uint64_t>(objects / 2) * 256;
  uint64_t probe = base;
  for (auto _ : state) {
    probe = probe == base ? base + 2560 : base;
    benchmark::DoNotOptimize(rt.BoundsCheck(*pool, probe, probe + 64));
  }
  const runtime::CheckStats& stats = rt.stats();
  if (stats.bounds_performed > 0) {
    state.counters["cmp/check"] = benchmark::Counter(
        static_cast<double>(stats.splay_comparisons) /
        static_cast<double>(stats.bounds_performed));
  }
  state.counters["hit_rate"] =
      benchmark::Counter(stats.cache_hit_rate());
}

void BM_BoundsCheckSplay(benchmark::State& state) {
  // The pre-cache configuration: every check pays the splay lookup.
  BoundsCheckSplayBody(state, /*use_cache=*/false);
}
BENCHMARK(BM_BoundsCheckSplay)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BoundsCheckCached(benchmark::State& state) {
  BoundsCheckSplayBody(state, /*use_cache=*/true);
}
BENCHMARK(BM_BoundsCheckCached)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BoundsCheckDirect(benchmark::State& state) {
  runtime::MetaPoolRuntime rt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt.BoundsCheckDirect(0x10000, 0x10040, 0x10080));
  }
}
BENCHMARK(BM_BoundsCheckDirect);

void BM_LoadStoreCheck(benchmark::State& state) {
  runtime::MetaPoolRuntime rt;
  runtime::MetaPool* pool = rt.CreatePool("MP", false, 0, true);
  for (int i = 0; i < 1024; ++i) {
    (void)rt.RegisterObject(*pool, 0x10000 + static_cast<uint64_t>(i) * 256,
                            128);
  }
  uint64_t probe = 0x10000 + 512 * 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.LoadStoreCheck(*pool, probe));
  }
}
BENCHMARK(BM_LoadStoreCheck);

// --- Whole-pipeline ablations ------------------------------------------------------

constexpr const char* kWorkload = R"(
module "ablate"
%node = type { i64, i64 }
declare i8* @kmalloc(i64)
declare void @kfree(i8*)

define i64 @churn(i64 %rounds) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %loop ]
  %raw = call i8* @kmalloc(i64 64)
  %idx = and i64 %i, 7
  %scaled = mul i64 %idx, 8
  %slot8 = getelementptr i8* %raw, i64 %scaled
  %slot = bitcast i8* %slot8 to i64*
  store i64 %i, i64* %slot
  %v = load i64, i64* %slot
  %acc2 = add i64 %acc, %v
  call void @kfree(i8* %raw)
  %i2 = add i64 %i, 1
  %more = icmp ult i64 %i2, %rounds
  br i1 %more, label %loop, label %done
done:
  ret i64 %acc2
}
)";

// One churn execution under a given compiler configuration.
void RunPipeline(benchmark::State& state,
                 const safety::SafetyCompilerOptions& options,
                 bool enforce, bool use_lookup_cache = true) {
  auto m = vir::ParseModule(kWorkload);
  if (!m.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  auto report = safety::RunSafetyCompiler(**m, options);
  if (!report.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  svm::SvmOptions svm_options;
  svm_options.interp.enforce_checks = enforce;
  svm_options.interp.use_lookup_cache = use_lookup_cache;
  svm::SecureVirtualMachine vm(svm_options);
  auto loaded = vm.LoadModule(std::move(m).value());
  if (!loaded.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  for (auto _ : state) {
    auto r = (*loaded)->Run("churn", {200});
    if (!r.status.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    benchmark::DoNotOptimize(r.value);
  }
}

void BM_PipelineChecksOff(benchmark::State& state) {
  safety::SafetyCompilerOptions options;
  RunPipeline(state, options, /*enforce=*/false);
}
BENCHMARK(BM_PipelineChecksOff);

void BM_PipelineFullChecks(benchmark::State& state) {
  safety::SafetyCompilerOptions options;
  RunPipeline(state, options, /*enforce=*/true);
}
BENCHMARK(BM_PipelineFullChecks);

void BM_PipelineNoLookupCache(benchmark::State& state) {
  // Ablate the metapool lookup cache: all surviving splay-tree checks pay
  // the full tree lookup.
  safety::SafetyCompilerOptions options;
  RunPipeline(state, options, /*enforce=*/true, /*use_lookup_cache=*/false);
}
BENCHMARK(BM_PipelineNoLookupCache);

void BM_PipelineNoDirectBounds(benchmark::State& state) {
  // Ablate Section 7.1.3 optimization 1: force splay lookups even where
  // object bounds are statically known.
  safety::SafetyCompilerOptions options;
  options.use_direct_bounds = false;
  RunPipeline(state, options, /*enforce=*/true);
}
BENCHMARK(BM_PipelineNoDirectBounds);

void BM_PipelineNoStaticElision(benchmark::State& state) {
  // Ablate optimization 3: bounds-check even provably-safe constant GEPs.
  safety::SafetyCompilerOptions options;
  options.elide_static_safe_bounds = false;
  RunPipeline(state, options, /*enforce=*/true);
}
BENCHMARK(BM_PipelineNoStaticElision);

void BM_PipelineNoTHElision(benchmark::State& state) {
  // Ablate the SAFECode TH optimization: load-store check even TH pools.
  safety::SafetyCompilerOptions options;
  options.elide_th_loadstore = false;
  RunPipeline(state, options, /*enforce=*/true);
}
BENCHMARK(BM_PipelineNoTHElision);

}  // namespace
}  // namespace sva::bench

// Console output plus JSON capture: every finished benchmark run is also
// recorded into the shared --json report.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      sva::bench::JsonReport::Get().Add(
          run.benchmark_name(), run.GetAdjustedRealTime(),
          benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "ablation_optimizations");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return sva::bench::JsonReport::Get().Finish();
}

