// Table 9 reproduction: "Static metrics of the effectiveness of the
// safety-checking compiler" — the fraction of loads, stores, structure
// indexing, and array indexing operations that touch incomplete vs
// type-safe metapools, plus allocation-site coverage, for the two
// configurations of the paper:
//
//   "As tested"     : the utility library is external (unanalyzed) code,
//                     so partitions exposed to it are incomplete.
//   "Entire kernel" : everything is compiled; all entry points are known
//                     and userspace is a valid object, so no sources of
//                     incompleteness remain.
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "src/corpus/corpus.h"
#include "src/safety/compiler.h"
#include "src/vir/parser.h"

namespace sva::bench {
namespace {

safety::SafetyReport CompileCorpus(bool entire_kernel) {
  auto m = vir::ParseModule(corpus::KernelCorpusText(entire_kernel));
  if (!m.ok()) {
    std::fprintf(stderr, "corpus parse failed: %s\n",
                 m.status().ToString().c_str());
    std::exit(1);
  }
  safety::SafetyCompilerOptions options;
  options.analysis = corpus::CorpusConfig(entire_kernel);
  auto report = safety::RunSafetyCompiler(**m, options);
  if (!report.ok()) {
    std::fprintf(stderr, "safety compiler failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return *report;
}

std::string Pct(uint64_t part, uint64_t total) {
  if (total == 0) {
    return "n/a";
  }
  return Fmt("%.0f%%", 100.0 * static_cast<double>(part) /
                           static_cast<double>(total));
}

void PrintKernelRows(const char* label, const safety::SafetyReport& r,
                     uint64_t total_sites, Table& table) {
  std::string sites =
      Pct(r.allocation_sites, total_sites == 0 ? r.allocation_sites
                                               : total_sites);
  table.AddRow({label, sites, "Loads", Pct(r.loads.to_incomplete,
                                           r.loads.total),
                Pct(r.loads.to_type_safe, r.loads.total)});
  table.AddRow({"", "", "Stores", Pct(r.stores.to_incomplete,
                                      r.stores.total),
                Pct(r.stores.to_type_safe, r.stores.total)});
  table.AddRow({"", "", "Structure Indexing",
                Pct(r.struct_indexing.to_incomplete, r.struct_indexing.total),
                Pct(r.struct_indexing.to_type_safe,
                    r.struct_indexing.total)});
  table.AddRow({"", "", "Array Indexing",
                Pct(r.array_indexing.to_incomplete, r.array_indexing.total),
                Pct(r.array_indexing.to_type_safe,
                    r.array_indexing.total)});
}

void Run() {
  std::printf(
      "Table 9: static metrics of the safety-checking compiler over the "
      "kernel corpus\n\n");
  safety::SafetyReport as_tested = CompileCorpus(false);
  safety::SafetyReport entire = CompileCorpus(true);
  uint64_t total_sites = entire.allocation_sites;

  Table table({"Kernel", "Alloc sites seen", "Access type", "Incomplete",
               "Type safe"});
  PrintKernelRows("As tested (libs excluded)", as_tested, total_sites,
                  table);
  PrintKernelRows("Entire kernel", entire, total_sites, table);
  table.Print();

  std::printf("\nDetail (as tested / entire kernel):\n");
  std::printf("  metapools:            %llu / %llu\n",
              static_cast<unsigned long long>(as_tested.metapools),
              static_cast<unsigned long long>(entire.metapools));
  std::printf("  TH metapools:         %llu / %llu\n",
              static_cast<unsigned long long>(as_tested.th_metapools),
              static_cast<unsigned long long>(entire.th_metapools));
  std::printf("  complete metapools:   %llu / %llu\n",
              static_cast<unsigned long long>(as_tested.complete_metapools),
              static_cast<unsigned long long>(entire.complete_metapools));
  std::printf("  bounds checks:        %llu / %llu\n",
              static_cast<unsigned long long>(as_tested.bounds_checks +
                                              as_tested.direct_bounds_checks),
              static_cast<unsigned long long>(entire.bounds_checks +
                                              entire.direct_bounds_checks));
  std::printf("  load-store checks:    %llu / %llu (reduced: %llu / %llu)\n",
              static_cast<unsigned long long>(as_tested.ls_checks),
              static_cast<unsigned long long>(entire.ls_checks),
              static_cast<unsigned long long>(as_tested.reduced_ls_checks),
              static_cast<unsigned long long>(entire.reduced_ls_checks));
  JsonReport::Get().Add("metapools", static_cast<double>(entire.metapools),
                        "count", "entire");
  JsonReport::Get().Add("metapools",
                        static_cast<double>(as_tested.metapools), "count",
                        "as-tested");
  JsonReport::Get().Add("th_metapools",
                        static_cast<double>(entire.th_metapools), "count",
                        "entire");
  JsonReport::Get().Add("bounds_checks",
                        static_cast<double>(entire.bounds_checks +
                                            entire.direct_bounds_checks),
                        "sites", "entire");
  JsonReport::Get().Add("ls_checks", static_cast<double>(entire.ls_checks),
                        "sites", "entire");
  JsonReport::Get().Add("reduced_ls_checks",
                        static_cast<double>(entire.reduced_ls_checks),
                        "sites", "entire");
  std::printf(
      "\nShape check vs paper: the partial build leaves most accesses on "
      "incomplete\npartitions while nearly all allocation sites are still "
      "registered; the\nentire-kernel build has zero incomplete "
      "accesses.\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "table9_static_metrics");
  sva::bench::Run();
  return sva::bench::JsonReport::Get().Finish();
}
