// Shared helpers for the reproduction benches: wall-clock timing with
// median-of-N repetition (HBench-OS style) and paper-style table printing.
#ifndef SVA_BENCH_COMMON_H_
#define SVA_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace sva::bench {

// Runs `fn` once and returns elapsed microseconds.
inline double TimeOnceUs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

// HBench-OS methodology: run `repetitions` trials, report the median
// per-iteration latency in microseconds (each trial runs `iters`
// iterations of `fn`).
inline double MedianLatencyUs(int repetitions, int iters,
                              const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    double us = TimeOnceUs([&] {
      for (int i = 0; i < iters; ++i) {
        fn();
      }
    });
    samples.push_back(us / iters);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Percentage overhead of `t` versus `baseline` (paper convention:
// 100 * (T_other - T_native) / T_native).
inline double OverheadPct(double baseline, double t) {
  return baseline <= 0 ? 0 : 100.0 * (t - baseline) / baseline;
}

// Simple fixed-width table printing.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) {
        std::printf("-");
      }
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

}  // namespace sva::bench

#endif  // SVA_BENCH_COMMON_H_
