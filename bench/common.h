// Shared helpers for the reproduction benches: wall-clock timing with
// median-of-N repetition (HBench-OS style), paper-style table printing,
// and machine-readable result export (--json).
#ifndef SVA_BENCH_COMMON_H_
#define SVA_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace sva::bench {

// Runs `fn` once and returns elapsed microseconds.
inline double TimeOnceUs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

// HBench-OS methodology: run `repetitions` trials, report the median
// per-iteration latency in microseconds (each trial runs `iters`
// iterations of `fn`).
inline double MedianLatencyUs(int repetitions, int iters,
                              const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    double us = TimeOnceUs([&] {
      for (int i = 0; i < iters; ++i) {
        fn();
      }
    });
    samples.push_back(us / iters);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Percentage overhead of `t` versus `baseline` (paper convention:
// 100 * (T_other - T_native) / T_native).
inline double OverheadPct(double baseline, double t) {
  return baseline <= 0 ? 0 : 100.0 * (t - baseline) / baseline;
}

// Simple fixed-width table printing.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) {
        std::printf("-");
      }
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

// The current git commit, read from the source tree's .git at run time
// (SVA_SOURCE_DIR is a compile definition on every bench target). Records
// in a JSON report carry this so results from different checkouts are
// never conflated.
inline std::string GitSha() {
#ifdef SVA_SOURCE_DIR
  std::ifstream head(std::string(SVA_SOURCE_DIR) + "/.git/HEAD");
  std::string line;
  if (head && std::getline(head, line)) {
    if (line.rfind("ref: ", 0) == 0) {
      std::ifstream ref(std::string(SVA_SOURCE_DIR) + "/.git/" +
                        line.substr(5));
      std::string sha;
      if (ref && std::getline(ref, sha)) {
        return sha;
      }
    } else if (!line.empty()) {
      return line;  // Detached HEAD holds the sha directly.
    }
  }
#endif
  return "unknown";
}

// Machine-readable result sink shared by every bench binary. Mains call
// Init(&argc, argv, name) first — it strips the shared flags
// (--json PATH, --quick, --trace-out PATH, --profile PATH) from argv so
// bench-specific
// parsers (including google-benchmark's) never see them — then the
// measurement code calls Add() wherever it computes a reported number,
// and main returns Finish(). Without --json all of this is inert.
class JsonReport {
 public:
  static JsonReport& Get() {
    static JsonReport report;
    return report;
  }

  void Init(int* argc, char** argv, std::string bench_name) {
    bench_ = std::move(bench_name);
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
        path_ = argv[++i];
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        quick_ = true;
      } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < *argc) {
        trace_out_ = argv[++i];
      } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < *argc) {
        profile_out_ = argv[++i];
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
  }

  // --quick: CI-sized iteration counts (the post-bench trace validation
  // test uses this so it never measures, only exercises the paths).
  bool quick() const { return quick_; }
  // --trace-out: where the bench should write its Chrome trace, if the
  // bench supports tracing; empty when not requested.
  const std::string& trace_out() const { return trace_out_; }
  // --profile: where the bench should write collapsed/folded profiler
  // stacks (flamegraph input); empty when not requested.
  const std::string& profile_out() const { return profile_out_; }

  // One measurement record. `mode` is the kernel/runtime configuration the
  // number belongs to ("native", "sva-safe", ...); `cpus` the worker count
  // (0 = single-threaded / not applicable).
  void Add(const std::string& metric, double value, const std::string& unit,
           const std::string& mode = "", unsigned cpus = 0) {
    Record r;
    r.metric = metric;
    r.value = value;
    r.unit = unit;
    r.mode = mode;
    r.cpus = cpus;
    records_.push_back(std::move(r));
  }

  // Writes the report if --json was given. Returns the process exit code.
  int Finish() const {
    if (path_.empty()) {
      return 0;
    }
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"" << Escape(bench_) << "\",\n"
        << "  \"git_sha\": \"" << Escape(GitSha()) << "\",\n"
        << "  \"hw_cpus\": " << std::thread::hardware_concurrency() << ",\n"
        << "  \"quick\": " << (quick_ ? "true" : "false") << ",\n"
        << "  \"records\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      char value[64];
      std::snprintf(value, sizeof(value), "%.6g", r.value);
      out << "    {\"metric\": \"" << Escape(r.metric) << "\", \"value\": "
          << value << ", \"unit\": \"" << Escape(r.unit) << "\"";
      if (!r.mode.empty()) {
        out << ", \"mode\": \"" << Escape(r.mode) << "\"";
      }
      if (r.cpus != 0) {
        out << ", \"cpus\": " << r.cpus;
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.good() ? 0 : 1;
  }

 private:
  struct Record {
    std::string metric;
    double value = 0;
    std::string unit;
    std::string mode;
    unsigned cpus = 0;
  };

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::string trace_out_;
  std::string profile_out_;
  bool quick_ = false;
  std::vector<Record> records_;
};

}  // namespace sva::bench

#endif  // SVA_BENCH_COMMON_H_
