// Figure 2 reproduction: the paper's instrumented fib_create_info fragment.
// We compile the same shape of kernel code — a global properties table
// indexed by a message field, plus a kmalloc'd fib_info object that is
// zeroed and linked — and print the points-to partitioning and the checks
// the compiler inserted: getBounds/boundscheck on the table indexing, the
// direct (lookup-free) bounds check on the fresh kmalloc object, the
// pchk.reg.obj registration, and the lscheck on the non-TH pointer loads.
#include <cstdio>

#include "bench/common.h"
#include "src/analysis/pointsto.h"
#include "src/safety/compiler.h"
#include "src/vir/parser.h"
#include "src/vir/printer.h"

namespace sva::bench {
namespace {

constexpr const char* kFibFragment = R"(
module "fib_create_info"

%fib_info = type { i32, i32, i64, i64* }

global @fib_props : [12 x i32]

declare i8* @kmalloc(i64)
declare void @kfree(i8*)
declare void @memset(i8*, i64, i64)

define i64 @fib_create_info(i64 %rtm_type, i64 %rtm_scope, i64* %rta_priority) {
entry:
  %prop_slot = getelementptr [12 x i32]* @fib_props, i64 0, i64 %rtm_type
  %scope = load i32, i32* %prop_slot
  %scope64 = zext i32 %scope to i64
  %bad = icmp sgt i64 %scope64, %rtm_scope
  br i1 %bad, label %err_inval, label %alloc
alloc:
  %fi = call i8* @kmalloc(i64 96)
  call void @memset(i8* %fi, i64 0, i64 96)
  %prio_is_null = icmp eq i64* %rta_priority, null
  br i1 %prio_is_null, label %done, label %set_prio
set_prio:
  %prio = load i64, i64* %rta_priority
  %fi_typed = bitcast i8* %fi to %fib_info*
  %prio_slot = getelementptr %fib_info* %fi_typed, i64 0, i32 2
  store i64 %prio, i64* %prio_slot
  br label %done
done:
  call void @kfree(i8* %fi)
  ret i64 0
err_inval:
  ret i64 -22
}
)";

void Run() {
  std::printf(
      "Figure 2: safety-checking compiler output for the fib_create_info "
      "fragment\n\n");
  auto m = vir::ParseModule(kFibFragment);
  if (!m.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", m.status().ToString().c_str());
    std::exit(1);
  }
  auto report = safety::RunSafetyCompiler(**m);
  if (!report.ok()) {
    std::fprintf(stderr, "compiler failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }

  std::printf("--- Points-to partitioning (metapools) ---------------------\n");
  for (const auto& [name, decl] : (*m)->metapools()) {
    std::printf("  %-6s  %-22s %s%s\n", name.c_str(),
                decl.type_homogeneous && decl.element_type != nullptr
                    ? decl.element_type->ToString().c_str()
                    : "(non-type-homogeneous)",
                decl.complete ? "complete" : "incomplete",
                decl.user_reachable ? ", user-reachable" : "");
  }

  std::printf("\n--- Instrumentation summary --------------------------------\n");
  std::printf("  object registrations (pchk.reg.obj):    %llu\n",
              static_cast<unsigned long long>(report->reg_obj));
  std::printf("  deallocation drops (pchk.drop.obj):     %llu\n",
              static_cast<unsigned long long>(report->drop_obj));
  std::printf("  splay-tree bounds checks:               %llu\n",
              static_cast<unsigned long long>(report->bounds_checks));
  std::printf("  direct bounds checks (no lookup):       %llu\n",
              static_cast<unsigned long long>(report->direct_bounds_checks));
  std::printf("  load-store checks (non-TH pools):       %llu\n",
              static_cast<unsigned long long>(report->ls_checks));
  std::printf("  checks elided on TH pools:              %llu\n",
              static_cast<unsigned long long>(report->elided_th_ls_checks));
  std::printf("  statically-safe GEPs elided:            %llu\n",
              static_cast<unsigned long long>(report->elided_bounds_checks));

  JsonReport::Get().Add("reg_obj", static_cast<double>(report->reg_obj),
                        "sites");
  JsonReport::Get().Add("drop_obj", static_cast<double>(report->drop_obj),
                        "sites");
  JsonReport::Get().Add("bounds_checks",
                        static_cast<double>(report->bounds_checks), "sites");
  JsonReport::Get().Add("direct_bounds_checks",
                        static_cast<double>(report->direct_bounds_checks),
                        "sites");
  JsonReport::Get().Add("ls_checks", static_cast<double>(report->ls_checks),
                        "sites");
  JsonReport::Get().Add("elided_th_ls_checks",
                        static_cast<double>(report->elided_th_ls_checks),
                        "sites");
  JsonReport::Get().Add("elided_bounds_checks",
                        static_cast<double>(report->elided_bounds_checks),
                        "sites");

  std::printf("\n--- Instrumented bytecode ----------------------------------\n");
  std::printf("%s\n",
              vir::PrintFunction(**m, *(*m)->GetFunction("fib_create_info"))
                  .c_str());
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "fig2_instrumentation");
  sva::bench::Run();
  return sva::bench::JsonReport::Get().Finish();
}
