// Tracing-overhead bench: what does the observability layer cost?
//
// The design target (ftrace/LTTng style) is that a *disabled* tracepoint is
// one predictable branch on a relaxed atomic load — cheap enough to leave
// compiled into every hot path. This bench provides the evidence, two ways:
//
//   1. Site-level: a tight loop over a disabled tracepoint, against an
//      empty loop, giving ns per disabled site (and, for contrast, the ns
//      per site with metrics and full ring recording enabled).
//   2. End-to-end: the Table 7 syscall workload (getpid / open+close /
//      pipe write+read on the SVA-Safe kernel) timed with tracing off,
//      metrics-only, and full; plus the measured tracepoint density
//      (events per syscall), which turns the site-level number into an
//      estimated whole-workload disabled overhead.
//   3. Profiling: the same treatment for the sampling profiler's context
//      hooks — ns per push/pop pair with a session live, hook density per
//      workload, and the resulting estimated overhead for the kernel
//      workload and both guest execution tiers (target: <= 5% with
//      profiling on; the disabled gate above stays <= 2%).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"
#include "src/safety/compiler.h"
#include "src/svm/svm.h"
#include "src/trace/metrics.h"
#include "src/trace/profiler.h"
#include "src/trace/trace.h"
#include "src/verifier/typechecker.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::bench {
namespace {

using kernel::Sys;

// --- Site-level: cost of one tracepoint per tracer state ---------------------

double SitePassUs(int iters) {
  // The probe mirrors an instant tracepoint on a hot path. volatile sink
  // keeps the loop itself from folding away.
  volatile uint64_t sink = 0;
  return TimeOnceUs([&] {
    for (int i = 0; i < iters; ++i) {
      trace::Emit(trace::EventId::kBoundsCheck, i, 0);
      sink = sink + 1;
    }
  });
}

double BaselinePassUs(int iters) {
  volatile uint64_t sink = 0;
  return TimeOnceUs([&] {
    for (int i = 0; i < iters; ++i) {
      sink = sink + 1;
    }
  });
}

double RunSiteBench(bool quick) {
  const int iters = quick ? 500000 : 2000000;
  const int reps = quick ? 5 : 9;
  std::printf(
      "Phase 1: per-tracepoint cost (loop of %d sites, median of %d)\n\n",
      iters, reps);
  struct State {
    const char* name;
    uint32_t mode;
  };
  const State states[] = {
      {"disabled", trace::kModeOff},
      {"metrics", trace::kModeMetrics},
      {"full (ring)", trace::kModeFull},
  };
  double baseline = 0;
  {
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
      samples.push_back(BaselinePassUs(iters));
    }
    std::sort(samples.begin(), samples.end());
    baseline = samples[samples.size() / 2];
  }
  Table table({"Tracer state", "ns/site", "vs empty loop"});
  double disabled_ns = 0;
  for (const State& s : states) {
    if (s.mode == trace::kModeOff) {
      trace::Tracer::Get().Disable();
    } else {
      trace::Tracer::Get().Enable(s.mode);
    }
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
      samples.push_back(SitePassUs(iters));
    }
    std::sort(samples.begin(), samples.end());
    double us = samples[samples.size() / 2];
    double ns_per_site = std::max(0.0, us - baseline) * 1000.0 / iters;
    if (s.mode == trace::kModeOff) {
      disabled_ns = ns_per_site;
    }
    table.AddRow({s.name, Fmt("%.2f", ns_per_site),
                  Fmt("%+.1f%%", OverheadPct(baseline, us))});
    JsonReport::Get().Add(std::string("tracepoint ns (") + s.name + ")",
                          ns_per_site, "ns");
  }
  trace::Tracer::Get().Disable();
  trace::Metrics::Get().Reset();
  table.Print();
  std::printf("\n(disabled site: %.2f ns — the single-branch target)\n\n",
              disabled_ns);
  return disabled_ns;
}

// --- End-to-end: the Table 7 workload under each tracer state ----------------

struct Workload {
  std::string name;
  std::function<void(BootedKernel&)> op;
  int iters;
};

std::vector<Workload> BuildWorkloads() {
  std::vector<Workload> w;
  w.push_back({"getpid", [](BootedKernel& k) { k.Call(Sys::kGetPid); }, 400});
  w.push_back({"open+close",
               [](BootedKernel& k) {
                 uint64_t fd = k.Call(Sys::kOpen, k.user(0), 0);
                 k.Call(Sys::kClose, fd);
               },
               200});
  w.push_back({"pipe w+r",
               [](BootedKernel& k) {
                 k.Call(Sys::kWrite, k.wfd, k.user(4096), 512);
                 k.Call(Sys::kRead, k.rfd, k.user(8192), 512);
               },
               200});
  return w;
}

void RunEndToEnd(bool quick, double disabled_site_ns) {
  const int reps = quick ? 5 : 30;
  std::printf(
      "Phase 2: Table 7 syscall workload on Linux-SVA-Safe, per tracer "
      "state (median of %d)\n\n",
      reps);
  struct State {
    const char* name;
    uint32_t mode;
  };
  const State states[] = {
      {"off", trace::kModeOff},
      {"metrics", trace::kModeMetrics},
      {"full", trace::kModeFull},
  };
  Table table({"Test", "off (us)", "metrics (%)", "full (%)",
               "events/op"});
  double total_site_ns = 0;
  double total_off_ns = 0;
  for (Workload& w : BuildWorkloads()) {
    BootedKernel k(kernel::KernelMode::kSvaSafe);
    (void)k.k().PokeUserString(k.user(0), "/dev/null");
    k.Call(Sys::kPipe, k.user(128));
    uint32_t fds[2];
    (void)k.k().PeekUser(k.user(128), fds, 8);
    k.rfd = fds[0];
    k.wfd = fds[1];
    for (int warm = 0; warm < 20; ++warm) {
      w.op(k);
    }
    // Tracepoint density: events recorded per operation with the ring on.
    trace::Tracer::Get().Enable(trace::kModeRing);
    for (int i = 0; i < 50; ++i) {
      w.op(k);
    }
    double events_per_op =
        static_cast<double>(trace::Tracer::Get().events_recorded()) / 50.0;
    trace::Tracer::Get().Disable();

    double us[3];
    for (int s = 0; s < 3; ++s) {
      if (states[s].mode == trace::kModeOff) {
        trace::Tracer::Get().Disable();
      } else {
        trace::Tracer::Get().Enable(states[s].mode);
      }
      std::vector<double> samples;
      for (int rep = 0; rep < reps; ++rep) {
        double t = TimeOnceUs([&] {
          for (int i = 0; i < w.iters; ++i) {
            w.op(k);
          }
        });
        samples.push_back(t / w.iters);
      }
      std::sort(samples.begin(), samples.end());
      us[s] = samples[samples.size() / 2];
      JsonReport::Get().Add(w.name + " latency", us[s], "us",
                            std::string("trace-") + states[s].name);
    }
    trace::Tracer::Get().Disable();
    // The disabled-overhead estimate: a disabled site's cost can't be
    // separated from run-to-run noise end to end (it is ~0.4 ns against
    // syscalls measured in hundreds), so bound it from the measured
    // tracepoint density times the phase-1 per-site cost — itself an
    // upper bound, since in situ the branch predictor sees each site far
    // less often than the microbench loop does.
    total_site_ns += events_per_op * disabled_site_ns;
    total_off_ns += us[0] * 1000.0;
    JsonReport::Get().Add(w.name + " events/op", events_per_op, "events");
    table.AddRow({w.name, Fmt("%.3f", us[0]),
                  Fmt("%+.1f", OverheadPct(us[0], us[1])),
                  Fmt("%+.1f", OverheadPct(us[0], us[2])),
                  Fmt("%.1f", events_per_op)});
  }
  trace::Metrics::Get().Reset();
  trace::Tracer::Get().Reset();
  table.Print();
  double estimated_pct =
      total_off_ns > 0 ? 100.0 * total_site_ns / total_off_ns : 0;
  std::printf(
      "\n=> estimated disabled-tracepoint overhead <= %.2f%% over the "
      "workload (target: <= 2%%)\n",
      estimated_pct);
  JsonReport::Get().Add("estimated disabled overhead", estimated_pct, "%");
  if (estimated_pct > 2.0) {
    std::fprintf(stderr,
                 "FAIL: disabled tracepoints cost more than 2%% of the "
                 "workload\n");
    std::exit(1);
  }
}

// --- Phase 3: the sampling profiler's hook + session cost --------------------

// One profiler context push/pop pair, exactly the call-site idiom the
// kernel syscall dispatcher uses. With no session live this measures the
// prof_enabled() branch; with a session live, the full seqlock'd pair.
double ProfPairPassUs(int iters) {
  static const uint32_t kProbeId = trace::InternProfName("bench:probe");
  volatile uint64_t sink = 0;
  return TimeOnceUs([&] {
    for (int i = 0; i < iters; ++i) {
      trace::ProfContextScope prof;
      if (trace::prof_enabled()) {
        prof.Enter(trace::ProfContext::kKernelSyscall, kProbeId, 1, 1);
      }
      sink = sink + 1;
    }
  });
}

double MedianPassNs(int reps, int iters, double baseline_us,
                    const std::function<double(int)>& pass) {
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    samples.push_back(pass(iters));
  }
  std::sort(samples.begin(), samples.end());
  double us = samples[samples.size() / 2];
  return std::max(0.0, us - baseline_us) * 1000.0 / iters;
}

// The table7 bytecode workload through the full pipeline (safety compiler
// -> verifier -> type check -> SVM), local to this bench so the profiler
// phase exercises real guest frames on both tiers.
constexpr char kProfBytecode[] = R"(
module "trace_overhead_bytecode"
declare i8* @kmalloc(i64)
declare void @kfree(i8*)

define i64 @syscall_like(i64 %len) {
entry:
  %buf = call i8* @kmalloc(i64 256)
  br label %copy
copy:
  %i = phi i64 [ 0, %entry ], [ %i2, %copy ]
  %sum = phi i64 [ 0, %entry ], [ %sum2, %copy ]
  %src = getelementptr i8* %buf, i64 %i
  %b = load i8, i8* %src
  %off = add i64 %i, 128
  %dst = getelementptr i8* %buf, i64 %off
  store i8 %b, i8* %dst
  %wide = zext i8 %b to i64
  %sum2 = add i64 %sum, %wide
  %i2 = add i64 %i, 1
  %done = icmp uge i64 %i2, %len
  br i1 %done, label %exit, label %copy
exit:
  call void @kfree(i8* %buf)
  ret i64 %sum2
}
)";

std::unique_ptr<svm::LoadedModule> LoadProfTierModule(svm::ExecTier tier) {
  auto fatal = [](const char* stage, const Status& s) {
    std::fprintf(stderr, "trace_overhead: bytecode %s failed: %s\n", stage,
                 s.ToString().c_str());
    std::exit(1);
  };
  auto parsed = vir::ParseModule(kProfBytecode);
  if (!parsed.ok()) fatal("parse", parsed.status());
  auto module = std::move(*parsed);
  safety::SafetyCompilerOptions copts;
  auto compiled = safety::RunSafetyCompiler(*module, copts);
  if (!compiled.ok()) fatal("safety compile", compiled.status());
  Status verified = vir::VerifyModule(*module);
  if (!verified.ok()) fatal("verify", verified);
  Status typed = verifier::TypeCheckOrError(*module);
  if (!typed.ok()) fatal("type check", typed);
  svm::SvmOptions options;
  options.interp.tier = tier;
  svm::SecureVirtualMachine vm(options);
  auto loaded = vm.LoadModule(std::move(module));
  if (!loaded.ok()) fatal("load", loaded.status());
  return std::move(*loaded);
}

void RunProfilingPhase(bool quick) {
  const int reps = quick ? 5 : 15;
  const int site_iters = quick ? 200000 : 1000000;
  std::printf(
      "\nPhase 3: sampling-profiler cost (hook pair over %d sites, "
      "median of %d)\n\n",
      site_iters, reps);

  double baseline;
  {
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
      samples.push_back(BaselinePassUs(site_iters));
    }
    std::sort(samples.begin(), samples.end());
    baseline = samples[samples.size() / 2];
  }
  double pair_off_ns =
      MedianPassNs(reps, site_iters, baseline, ProfPairPassUs);

  // The measured workloads and their hook densities. Hook counts follow
  // from the instrumentation sites: on the SVA-Safe kernel each syscall
  // pushes one context in HandleSyscall and one in the SVA-OS dispatcher;
  // on the execution tiers each guest function entry pushes one frame (the
  // workload is a single-function call per op).
  struct ProfWorkload {
    std::string name;
    std::string mode;  // JSON mode tag the estimate is reported under.
    std::function<void()> op;
    int iters;
    double hooks_per_op;
  };
  auto kernel_harness =
      std::make_shared<BootedKernel>(kernel::KernelMode::kSvaSafe);
  {
    BootedKernel& k = *kernel_harness;
    (void)k.k().PokeUserString(k.user(0), "/dev/null");
    k.Call(Sys::kPipe, k.user(128));
    uint32_t fds[2];
    (void)k.k().PeekUser(k.user(128), fds, 8);
    k.rfd = fds[0];
    k.wfd = fds[1];
  }
  std::shared_ptr<svm::LoadedModule> interp_module =
      LoadProfTierModule(svm::ExecTier::kInterp);
  std::shared_ptr<svm::LoadedModule> threaded_module =
      LoadProfTierModule(svm::ExecTier::kThreaded);
  auto guest_op = [](std::shared_ptr<svm::LoadedModule> m) {
    return [m] {
      svm::ExecResult r = m->Run("syscall_like", {64});
      if (!r.status.ok()) {
        std::fprintf(stderr, "trace_overhead: bytecode run failed: %s\n",
                     r.status.ToString().c_str());
        std::exit(1);
      }
    };
  };
  std::vector<ProfWorkload> workloads;
  workloads.push_back({"getpid", "sva-safe",
                       [kernel_harness] {
                         kernel_harness->Call(Sys::kGetPid);
                       },
                       400, 2.0});
  workloads.push_back({"pipe w+r", "sva-safe",
                       [kernel_harness] {
                         BootedKernel& k = *kernel_harness;
                         k.Call(Sys::kWrite, k.wfd, k.user(4096), 512);
                         k.Call(Sys::kRead, k.rfd, k.user(8192), 512);
                       },
                       200, 4.0});
  workloads.push_back({"bytecode interp", "tier-interp",
                       guest_op(interp_module), 100, 1.0});
  workloads.push_back({"bytecode threaded", "tier-threaded",
                       guest_op(threaded_module), 200, 1.0});

  // Per-op latency with no session live.
  std::vector<double> off_us(workloads.size());
  for (size_t w = 0; w < workloads.size(); ++w) {
    for (int warm = 0; warm < 20; ++warm) {
      workloads[w].op();
    }
    off_us[w] = MedianLatencyUs(reps, workloads[w].iters, workloads[w].op);
  }

  // Live session: the sampler runs on its own thread for the rest of the
  // phase, so the hook pair is measured at its real (seqlock'd) cost and
  // the run collects actual samples. --quick samples at ~10 kHz so even a
  // short run records a meaningful count.
  trace::Profiler::Options popts;
  popts.hz = quick ? 9973 : 997;
  popts.num_cpus = 1;
  if (!trace::Profiler::Get().Start(popts)) {
    std::fprintf(stderr, "trace_overhead: cannot start profiler\n");
    std::exit(1);
  }
  double pair_on_ns =
      MedianPassNs(reps, site_iters, baseline, ProfPairPassUs);
  std::vector<double> on_us(workloads.size());
  for (size_t w = 0; w < workloads.size(); ++w) {
    on_us[w] = MedianLatencyUs(reps, workloads[w].iters, workloads[w].op);
  }
  trace::Profiler::Get().Stop();
  uint64_t prof_samples = trace::Profiler::Get().stats().samples;

  std::printf("hook pair: %.2f ns disabled, %.2f ns with session live\n\n",
              pair_off_ns, pair_on_ns);
  JsonReport::Get().Add("prof hook ns (disabled)", pair_off_ns, "ns");
  JsonReport::Get().Add("prof hook ns (profiling)", pair_on_ns, "ns");

  // The gate mirrors the phase-2 disabled estimate: the hook cost is
  // bounded analytically (density x measured pair cost over the workload's
  // unprofiled time) because the end-to-end "profiling (us)" column cannot
  // be read as hook cost — on hosts with one hardware thread the sampler
  // thread time-slices with the workload and the measured delta is
  // scheduler noise, not producer overhead (the same caveat c10k's p99
  // gate documents). Gated three ways, per the acceptance bar: the
  // aggregated Table 7 mix and each execution tier individually.
  Table table({"Workload", "off (us)", "profiling (us)", "hooks/op",
               "est. overhead"});
  bool failed = false;
  double total_hook_ns = 0;
  double total_off_ns = 0;
  for (size_t w = 0; w < workloads.size(); ++w) {
    const ProfWorkload& wl = workloads[w];
    double est_pct = off_us[w] <= 0
                         ? 0
                         : 100.0 * (wl.hooks_per_op * pair_on_ns) /
                               (off_us[w] * 1000.0);
    total_hook_ns += wl.hooks_per_op * pair_on_ns;
    total_off_ns += off_us[w] * 1000.0;
    table.AddRow({wl.name, Fmt("%.3f", off_us[w]), Fmt("%.3f", on_us[w]),
                  Fmt("%.0f", wl.hooks_per_op), Fmt("%.2f%%", est_pct)});
    JsonReport::Get().Add(wl.name + " latency", on_us[w], "us",
                          "profiling");
    if (wl.mode == "tier-interp" || wl.mode == "tier-threaded") {
      // Per-tier gate: one frame push/pop against a whole bytecode run.
      JsonReport::Get().Add("estimated profiling overhead", est_pct, "%",
                            wl.mode);
      if (est_pct > 5.0) {
        failed = true;
      }
    }
  }
  table.Print();
  double mix_pct =
      total_off_ns > 0 ? 100.0 * total_hook_ns / total_off_ns : 0;
  JsonReport::Get().Add("estimated profiling overhead", mix_pct, "%",
                        "table7-mix");
  JsonReport::Get().Add("prof samples",
                        static_cast<double>(prof_samples), "samples");
  std::printf(
      "\n=> %llu samples collected; estimated profiling overhead <= %.2f%% "
      "over the workload (target: <= 5%%, per tier and in aggregate)\n",
      static_cast<unsigned long long>(prof_samples), mix_pct);
  if (mix_pct > 5.0) {
    failed = true;
  }
  if (failed) {
    std::fprintf(stderr,
                 "FAIL: profiling hooks cost more than 5%% of the "
                 "workload\n");
    std::exit(1);
  }
  if (prof_samples == 0) {
    std::fprintf(stderr, "FAIL: profiling session recorded no samples\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  auto& report = sva::bench::JsonReport::Get();
  report.Init(&argc, argv, "trace_overhead");
  double disabled_site_ns = sva::bench::RunSiteBench(report.quick());
  sva::bench::RunEndToEnd(report.quick(), disabled_site_ns);
  sva::bench::RunProfilingPhase(report.quick());
  return report.Finish();
}
