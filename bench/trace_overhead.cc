// Tracing-overhead bench: what does the observability layer cost?
//
// The design target (ftrace/LTTng style) is that a *disabled* tracepoint is
// one predictable branch on a relaxed atomic load — cheap enough to leave
// compiled into every hot path. This bench provides the evidence, two ways:
//
//   1. Site-level: a tight loop over a disabled tracepoint, against an
//      empty loop, giving ns per disabled site (and, for contrast, the ns
//      per site with metrics and full ring recording enabled).
//   2. End-to-end: the Table 7 syscall workload (getpid / open+close /
//      pipe write+read on the SVA-Safe kernel) timed with tracing off,
//      metrics-only, and full; plus the measured tracepoint density
//      (events per syscall), which turns the site-level number into an
//      estimated whole-workload disabled overhead.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace sva::bench {
namespace {

using kernel::Sys;

// --- Site-level: cost of one tracepoint per tracer state ---------------------

double SitePassUs(int iters) {
  // The probe mirrors an instant tracepoint on a hot path. volatile sink
  // keeps the loop itself from folding away.
  volatile uint64_t sink = 0;
  return TimeOnceUs([&] {
    for (int i = 0; i < iters; ++i) {
      trace::Emit(trace::EventId::kBoundsCheck, i, 0);
      sink = sink + 1;
    }
  });
}

double BaselinePassUs(int iters) {
  volatile uint64_t sink = 0;
  return TimeOnceUs([&] {
    for (int i = 0; i < iters; ++i) {
      sink = sink + 1;
    }
  });
}

double RunSiteBench(bool quick) {
  const int iters = quick ? 500000 : 2000000;
  const int reps = quick ? 5 : 9;
  std::printf(
      "Phase 1: per-tracepoint cost (loop of %d sites, median of %d)\n\n",
      iters, reps);
  struct State {
    const char* name;
    uint32_t mode;
  };
  const State states[] = {
      {"disabled", trace::kModeOff},
      {"metrics", trace::kModeMetrics},
      {"full (ring)", trace::kModeFull},
  };
  double baseline = 0;
  {
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
      samples.push_back(BaselinePassUs(iters));
    }
    std::sort(samples.begin(), samples.end());
    baseline = samples[samples.size() / 2];
  }
  Table table({"Tracer state", "ns/site", "vs empty loop"});
  double disabled_ns = 0;
  for (const State& s : states) {
    if (s.mode == trace::kModeOff) {
      trace::Tracer::Get().Disable();
    } else {
      trace::Tracer::Get().Enable(s.mode);
    }
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
      samples.push_back(SitePassUs(iters));
    }
    std::sort(samples.begin(), samples.end());
    double us = samples[samples.size() / 2];
    double ns_per_site = std::max(0.0, us - baseline) * 1000.0 / iters;
    if (s.mode == trace::kModeOff) {
      disabled_ns = ns_per_site;
    }
    table.AddRow({s.name, Fmt("%.2f", ns_per_site),
                  Fmt("%+.1f%%", OverheadPct(baseline, us))});
    JsonReport::Get().Add(std::string("tracepoint ns (") + s.name + ")",
                          ns_per_site, "ns");
  }
  trace::Tracer::Get().Disable();
  trace::Metrics::Get().Reset();
  table.Print();
  std::printf("\n(disabled site: %.2f ns — the single-branch target)\n\n",
              disabled_ns);
  return disabled_ns;
}

// --- End-to-end: the Table 7 workload under each tracer state ----------------

struct Workload {
  std::string name;
  std::function<void(BootedKernel&)> op;
  int iters;
};

std::vector<Workload> BuildWorkloads() {
  std::vector<Workload> w;
  w.push_back({"getpid", [](BootedKernel& k) { k.Call(Sys::kGetPid); }, 400});
  w.push_back({"open+close",
               [](BootedKernel& k) {
                 uint64_t fd = k.Call(Sys::kOpen, k.user(0), 0);
                 k.Call(Sys::kClose, fd);
               },
               200});
  w.push_back({"pipe w+r",
               [](BootedKernel& k) {
                 k.Call(Sys::kWrite, k.wfd, k.user(4096), 512);
                 k.Call(Sys::kRead, k.rfd, k.user(8192), 512);
               },
               200});
  return w;
}

void RunEndToEnd(bool quick, double disabled_site_ns) {
  const int reps = quick ? 5 : 30;
  std::printf(
      "Phase 2: Table 7 syscall workload on Linux-SVA-Safe, per tracer "
      "state (median of %d)\n\n",
      reps);
  struct State {
    const char* name;
    uint32_t mode;
  };
  const State states[] = {
      {"off", trace::kModeOff},
      {"metrics", trace::kModeMetrics},
      {"full", trace::kModeFull},
  };
  Table table({"Test", "off (us)", "metrics (%)", "full (%)",
               "events/op"});
  double total_site_ns = 0;
  double total_off_ns = 0;
  for (Workload& w : BuildWorkloads()) {
    BootedKernel k(kernel::KernelMode::kSvaSafe);
    (void)k.k().PokeUserString(k.user(0), "/dev/null");
    k.Call(Sys::kPipe, k.user(128));
    uint32_t fds[2];
    (void)k.k().PeekUser(k.user(128), fds, 8);
    k.rfd = fds[0];
    k.wfd = fds[1];
    for (int warm = 0; warm < 20; ++warm) {
      w.op(k);
    }
    // Tracepoint density: events recorded per operation with the ring on.
    trace::Tracer::Get().Enable(trace::kModeRing);
    for (int i = 0; i < 50; ++i) {
      w.op(k);
    }
    double events_per_op =
        static_cast<double>(trace::Tracer::Get().events_recorded()) / 50.0;
    trace::Tracer::Get().Disable();

    double us[3];
    for (int s = 0; s < 3; ++s) {
      if (states[s].mode == trace::kModeOff) {
        trace::Tracer::Get().Disable();
      } else {
        trace::Tracer::Get().Enable(states[s].mode);
      }
      std::vector<double> samples;
      for (int rep = 0; rep < reps; ++rep) {
        double t = TimeOnceUs([&] {
          for (int i = 0; i < w.iters; ++i) {
            w.op(k);
          }
        });
        samples.push_back(t / w.iters);
      }
      std::sort(samples.begin(), samples.end());
      us[s] = samples[samples.size() / 2];
      JsonReport::Get().Add(w.name + " latency", us[s], "us",
                            std::string("trace-") + states[s].name);
    }
    trace::Tracer::Get().Disable();
    // The disabled-overhead estimate: a disabled site's cost can't be
    // separated from run-to-run noise end to end (it is ~0.4 ns against
    // syscalls measured in hundreds), so bound it from the measured
    // tracepoint density times the phase-1 per-site cost — itself an
    // upper bound, since in situ the branch predictor sees each site far
    // less often than the microbench loop does.
    total_site_ns += events_per_op * disabled_site_ns;
    total_off_ns += us[0] * 1000.0;
    JsonReport::Get().Add(w.name + " events/op", events_per_op, "events");
    table.AddRow({w.name, Fmt("%.3f", us[0]),
                  Fmt("%+.1f", OverheadPct(us[0], us[1])),
                  Fmt("%+.1f", OverheadPct(us[0], us[2])),
                  Fmt("%.1f", events_per_op)});
  }
  trace::Metrics::Get().Reset();
  trace::Tracer::Get().Reset();
  table.Print();
  double estimated_pct =
      total_off_ns > 0 ? 100.0 * total_site_ns / total_off_ns : 0;
  std::printf(
      "\n=> estimated disabled-tracepoint overhead <= %.2f%% over the "
      "workload (target: <= 2%%)\n",
      estimated_pct);
  JsonReport::Get().Add("estimated disabled overhead", estimated_pct, "%");
  if (estimated_pct > 2.0) {
    std::fprintf(stderr,
                 "FAIL: disabled tracepoints cost more than 2%% of the "
                 "workload\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  auto& report = sva::bench::JsonReport::Get();
  report.Init(&argc, argv, "trace_overhead");
  double disabled_site_ns = sva::bench::RunSiteBench(report.quick());
  sva::bench::RunEndToEnd(report.quick(), disabled_site_ns);
  return report.Finish();
}
