// A booted minikernel per configuration plus the "user program" snippets
// the application/microbenchmark tables run against it.
#ifndef SVA_BENCH_KERNEL_HARNESS_H_
#define SVA_BENCH_KERNEL_HARNESS_H_

#include <cassert>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/smp/percpu.h"

namespace sva::bench {

class BootedKernel {
 public:
  explicit BootedKernel(kernel::KernelMode mode)
      : machine_(std::make_unique<hw::Machine>(512ull << 20, 16384)) {
    kernel::KernelConfig config;
    config.mode = mode;
    kernel_ = std::make_unique<kernel::Kernel>(*machine_, config);
    Status s = kernel_->Boot();
    assert(s.ok());
    (void)s;
  }

  kernel::Kernel& k() { return *kernel_; }

  uint64_t user(uint64_t offset = 0) const {
    return kernel::kUserVirtualBase +
           static_cast<uint64_t>(kernel_->current_pid()) * 0x100000 + offset;
  }

  // Syscall helper that asserts transport success.
  uint64_t Call(kernel::Sys n, uint64_t a0 = 0, uint64_t a1 = 0,
                uint64_t a2 = 0, uint64_t a3 = 0) {
    auto r = kernel_->Syscall(n, a0, a1, a2, a3);
    assert(r.ok());
    return *r;
  }

  // Opens (creating) a file and returns the fd.
  uint64_t OpenFile(const std::string& path, uint64_t flags = 1) {
    Status s = kernel_->PokeUserString(user(0), path);
    assert(s.ok());
    (void)s;
    return Call(kernel::Sys::kOpen, user(0), flags);
  }

  // Writes `total` bytes to fd in user-buffer-sized chunks.
  void FillFile(uint64_t fd, uint64_t total, uint64_t chunk = 4096) {
    for (uint64_t done = 0; done < total;) {
      uint64_t n = std::min(chunk, total - done);
      Call(kernel::Sys::kWrite, fd, user(4096), n);
      done += n;
    }
  }

  // N-worker syscall driver: brings up `threads` virtual CPUs, binds one
  // worker thread to each, and runs `fn(worker_index)` on all of them
  // concurrently. Syscalls dispatch onto per-subsystem leaf locks
  // (docs/CONCURRENCY.md), so kernel phases scale with workers; the check
  // runtime underneath scales per-CPU.
  template <typename Fn>
  void RunWorkers(unsigned threads, Fn&& fn) {
    kernel_->svaos().ConfigureCpus(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([t, &fn] {
        smp::ScopedCpu bind(t);
        fn(t);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }

  // Scratch fds a bench can stash on the harness (e.g. the ends of a pipe
  // opened during setup) so its workload lambdas only need the kernel.
  uint64_t rfd = 0;
  uint64_t wfd = 0;

 private:
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<kernel::Kernel> kernel_;
};

inline const kernel::KernelMode kAllModes[] = {
    kernel::KernelMode::kNative, kernel::KernelMode::kSvaGcc,
    kernel::KernelMode::kSvaLlvm, kernel::KernelMode::kSvaSafe};

}  // namespace sva::bench

#endif  // SVA_BENCH_KERNEL_HARNESS_H_
