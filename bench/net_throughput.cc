// Networking throughput on the virtual NIC and the loopback device:
//
//   Phase 1  packet rate and request/response rate per kernel mode — the
//            client injects UDP datagrams through the NIC rx path (DMA,
//            rx interrupt, parse, metapool bounds checks in safe mode) and
//            the kernel answers over the tx ring. Reports packets/sec,
//            ns/packet, and requests/sec with the paper-style overhead
//            percentage versus native.
//   Phase 2  --cpus N scaling on Linux-SVA-Safe: net syscalls run OFF the
//            big kernel lock, so N workers each driving their own datagram
//            socket over the lo device should scale.
//   Phase 3  detection parity: a malformed datagram whose UDP header lies
//            about its length must be caught (rx_violations) — and the
//            caught/delivered behaviour must be identical at every CPU
//            count, with concurrent lo traffic hammering the stack.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"
#include "src/net/client.h"
#include "src/safety/compiler.h"
#include "src/svm/svm.h"
#include "src/verifier/typechecker.h"
#include "src/vir/parser.h"
#include "src/vir/structural_verifier.h"

namespace sva::bench {
namespace {

using kernel::Sys;

constexpr uint16_t kUdpPort = 7000;
constexpr uint64_t kPacketBytes = 512;
constexpr uint64_t kResponseBytes = 311;  // Table 6's small page.

uint64_t DestOf(uint32_t ip, uint16_t port) {
  return (static_cast<uint64_t>(ip) << 16) | port;
}

// --- Phase 1: per-mode packet and request rates ------------------------------

struct ModeRates {
  double pkts_per_sec = 0;
  double ns_per_packet = 0;
  double reqs_per_sec = 0;
  double irqs_per_packet = 0;
};

ModeRates MeasureMode(kernel::KernelMode mode) {
  BootedKernel k(mode);
  net::LoopbackClient client(*k.k().net());
  uint64_t sock = k.Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
  k.Call(Sys::kBind, sock, kUdpPort);

  const std::vector<uint8_t> payload(kPacketBytes, 0x42);
  // Batch mode: the burst lands in the rx ring back-to-back and is drained
  // by NAPI-budgeted polls behind ONE masked interrupt per burst, not one
  // interrupt per frame — the irq/pkt column below measures exactly that.
  client.set_batch_mode(true);
  auto pump_burst = [&](int packets) {
    // Wire -> NIC ring; one Flush raises the rx interrupt for the burst;
    // then the recv syscalls drain the socket queue.
    for (int i = 0; i < packets; ++i) {
      Status s = client.SendDatagram(5555, kUdpPort, payload);
      if (!s.ok()) {
        std::fprintf(stderr, "send: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    client.Flush();
    for (int i = 0; i < packets; ++i) {
      uint64_t n = k.Call(Sys::kRecv, sock, k.user(16384), 2048);
      if (n != kPacketBytes) {
        std::fprintf(stderr, "recv got %llu bytes, want %llu\n",
                     static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(kPacketBytes));
        std::exit(1);
      }
    }
  };
  // Bursts stay under the 512-packet socket queue cap.
  constexpr int kBurst = 256;
  constexpr int kBursts = 8;
  pump_burst(kBurst);  // Warm-up.
  const net::NetStats& ns = k.k().net()->stats();
  uint64_t irqs_before = ns.rx_irqs.load();
  double us = TimeOnceUs([&] {
    for (int b = 0; b < kBursts; ++b) {
      pump_burst(kBurst);
    }
  });
  ModeRates r;
  double packets = static_cast<double>(kBurst) * kBursts;
  r.pkts_per_sec = packets / us * 1e6;
  r.ns_per_packet = us * 1000.0 / packets;
  r.irqs_per_packet =
      static_cast<double>(ns.rx_irqs.load() - irqs_before) / packets;

  // Request/response: client asks, kernel answers with the 311-byte page.
  // Interactive path, so each request frame is delivered as it arrives.
  client.set_batch_mode(false);
  constexpr int kRequests = 512;
  const std::vector<uint8_t> request(64, 0x47);
  for (int i = 0; i < 64; ++i) {  // Warm-up: fault in the tx user buffer.
    (void)client.SendDatagram(5556, kUdpPort, request);
    k.Call(Sys::kRecv, sock, k.user(16384), 2048);
    k.Call(Sys::kSend, sock, k.user(20480), kResponseBytes,
           DestOf(net::kClientIp, 5556));
  }
  (void)client.TakeDatagrams();
  double rus = TimeOnceUs([&] {
    for (int i = 0; i < kRequests; ++i) {
      Status s = client.SendDatagram(5556, kUdpPort, request);
      if (!s.ok()) {
        std::fprintf(stderr, "request: %s\n", s.ToString().c_str());
        std::exit(1);
      }
      k.Call(Sys::kRecv, sock, k.user(16384), 2048);
      k.Call(Sys::kSend, sock, k.user(20480), kResponseBytes,
             DestOf(net::kClientIp, 5556));
    }
  });
  uint64_t answered = client.TakeDatagrams().size();
  if (answered != kRequests) {
    std::fprintf(stderr, "client saw %llu responses, want %d\n",
                 static_cast<unsigned long long>(answered), kRequests);
    std::exit(1);
  }
  r.reqs_per_sec = static_cast<double>(kRequests) / rus * 1e6;
  return r;
}

void RunModes() {
  std::printf("Phase 1: UDP packet path per kernel configuration\n\n");
  Table table({"Kernel", "packets/s", "ns/packet", "irq/pkt", "requests/s",
               "req overhead (%)"});
  double native_req = 0;
  for (kernel::KernelMode mode : kAllModes) {
    ModeRates r = MeasureMode(mode);
    if (mode == kernel::KernelMode::kNative) {
      native_req = r.reqs_per_sec;
    }
    if (r.irqs_per_packet >= 1.0) {
      std::fprintf(stderr,
                   "NAPI regression: %.3f rx interrupts per packet (want "
                   "< 1)\n",
                   r.irqs_per_packet);
      std::exit(1);
    }
    table.AddRow({kernel::KernelModeName(mode), Fmt("%.0f", r.pkts_per_sec),
                  Fmt("%.0f", r.ns_per_packet),
                  Fmt("%.4f", r.irqs_per_packet),
                  Fmt("%.0f", r.reqs_per_sec),
                  mode == kernel::KernelMode::kNative
                      ? "-"
                      : Fmt("%.1f", OverheadPct(r.reqs_per_sec, native_req))});
    JsonReport::Get().Add("udp packets/sec", r.pkts_per_sec, "pkts/s",
                          kernel::KernelModeName(mode));
    JsonReport::Get().Add("udp requests/sec", r.reqs_per_sec, "reqs/s",
                          kernel::KernelModeName(mode));
    JsonReport::Get().Add("rx irqs per packet", r.irqs_per_packet,
                          "irq/pkt", kernel::KernelModeName(mode));
  }
  table.Print();
  std::printf("\n");
}

// --- Phase 2: lo-device scaling across CPUs ----------------------------------

void RunScaling(unsigned max_cpus) {
  std::printf(
      "Phase 2: Linux-SVA-Safe lo-device scaling (net syscalls off the "
      "big kernel lock)\n"
      "         host has %u hardware thread(s); speedup is bounded by "
      "that, not by the stack\n\n",
      std::thread::hardware_concurrency());
  constexpr int kItersPerWorker = 4000;
  Table table({"CPUs", "packets", "packets/s", "ns/packet", "speedup"});
  double base_pps = 0;
  for (unsigned cpus = 1; cpus <= max_cpus; cpus *= 2) {
    BootedKernel k(kernel::KernelMode::kSvaSafe);
    // Stage each worker's payload before the clock starts.
    for (unsigned t = 0; t < cpus; ++t) {
      std::vector<uint8_t> bytes(256, static_cast<uint8_t>(t));
      Status s = k.k().PokeUser(k.user(16384 + t * 4096), bytes.data(),
                                bytes.size());
      if (!s.ok()) {
        std::fprintf(stderr, "poke: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    double us = TimeOnceUs([&] {
      k.RunWorkers(cpus, [&k](unsigned t) {
        uint64_t fd = k.Call(
            Sys::kSocket,
            static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
        uint16_t port = static_cast<uint16_t>(9000 + t);
        k.Call(Sys::kBind, fd, port);
        uint64_t txbuf = k.user(16384 + t * 4096);
        uint64_t rxbuf = k.user(16384 + t * 4096 + 2048);
        for (int i = 0; i < kItersPerWorker; ++i) {
          uint64_t sent = k.Call(Sys::kSend, fd, txbuf, 256,
                                 DestOf(net::kServerIp, port));
          uint64_t got = k.Call(Sys::kRecv, fd, rxbuf, 2048);
          if (sent != 256 || got != 256) {
            std::fprintf(stderr, "worker %u: sent %llu recv %llu\n", t,
                         static_cast<unsigned long long>(sent),
                         static_cast<unsigned long long>(got));
            std::exit(1);
          }
        }
        k.Call(Sys::kClose, fd);
      });
    });
    double packets = static_cast<double>(kItersPerWorker) * cpus;
    double pps = packets / us * 1e6;
    if (cpus == 1) {
      base_pps = pps;
    }
    table.AddRow({Fmt("%.0f", cpus), Fmt("%.0f", packets), Fmt("%.0f", pps),
                  Fmt("%.0f", us * 1000.0 / packets),
                  Fmt("%.2fx", base_pps > 0 ? pps / base_pps : 0)});
    JsonReport::Get().Add("lo packets/sec", pps, "pkts/s", "sva-safe",
                          cpus);
  }
  table.Print();
  std::printf("\n");
}

// --- Phase 3: detection parity across CPU counts -----------------------------

// Runs the malformed-datagram attack against a safe kernel while `cpus - 1`
// workers hammer the lo path. Returns a bitmap: bit 0 = every malformed
// frame caught by the bounds check, bit 1 = every benign frame delivered.
uint32_t ParityBitmap(unsigned cpus) {
  constexpr int kAttacks = 8;
  BootedKernel k(kernel::KernelMode::kSvaSafe);
  uint64_t victim = k.Call(
      Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
  k.Call(Sys::kBind, victim, 7100);
  uint64_t before = k.k().net()->stats().rx_violations.load();
  net::LoopbackClient client(*k.k().net());
  const std::vector<uint8_t> benign(64, 0x11);
  k.RunWorkers(cpus, [&](unsigned t) {
    if (t == 0) {
      // The attacker: frames whose UDP length field claims 4 KB of payload
      // in a 2 KB packet buffer, interleaved with benign traffic.
      for (int i = 0; i < kAttacks; ++i) {
        Status s = client.SendMalformedDatagram(6000, 7100,
                                               /*claimed_payload=*/4096,
                                               /*actual_payload=*/64);
        if (!s.ok()) {
          std::fprintf(stderr, "malformed send: %s\n", s.ToString().c_str());
          std::exit(1);
        }
        s = client.SendDatagram(6001, 7100, benign);
        if (!s.ok()) {
          std::fprintf(stderr, "benign send: %s\n", s.ToString().c_str());
          std::exit(1);
        }
      }
      return;
    }
    // Background load on the lo device from the other CPUs.
    uint64_t fd = k.Call(
        Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kDatagram));
    uint16_t port = static_cast<uint16_t>(9200 + t);
    k.Call(Sys::kBind, fd, port);
    uint64_t buf = k.user(16384 + t * 4096);
    for (int i = 0; i < 400; ++i) {
      k.Call(Sys::kSend, fd, buf, 128, DestOf(net::kServerIp, port));
      k.Call(Sys::kRecv, fd, buf + 2048, 2048);
    }
    k.Call(Sys::kClose, fd);
  });
  uint64_t violations = k.k().net()->stats().rx_violations.load() - before;
  int delivered = 0;
  while (k.Call(Sys::kRecv, victim, k.user(16384), 2048) ==
         benign.size()) {
    ++delivered;
  }
  uint32_t bitmap = 0;
  if (violations == kAttacks) {
    bitmap |= 1u;  // Every lying header stopped by the bounds check.
  }
  if (delivered == kAttacks) {
    bitmap |= 2u;  // Every benign frame survived the attack.
  }
  return bitmap;
}

void RunParity(unsigned max_cpus) {
  std::printf(
      "Phase 3: malformed-packet detection parity across CPU counts\n\n");
  uint32_t serial = ParityBitmap(1);
  std::printf("  1 cpu : caught bitmap 0x%x\n", serial);
  for (unsigned cpus = 2; cpus <= max_cpus; cpus *= 2) {
    uint32_t bitmap = ParityBitmap(cpus);
    std::printf("  %u cpus: caught bitmap 0x%x\n", cpus, bitmap);
    if (bitmap != serial) {
      std::fprintf(stderr,
                   "parity failure: %u-cpu bitmap 0x%x != 1-cpu 0x%x\n",
                   cpus, bitmap, serial);
      std::exit(1);
    }
  }
  if (serial != 0x3) {
    std::fprintf(stderr,
                 "expected all attacks caught and all benign frames "
                 "delivered (0x3), got 0x%x\n",
                 serial);
    std::exit(1);
  }
  std::printf(
      "\n=> identical at every CPU count: attacks stopped, benign traffic "
      "unharmed.\n");
}

// --- Phase 4: packet parse on the SVM execution tiers ------------------------

// The rx parse step as verified bytecode: copy `claimed` payload bytes from
// a 128-byte frame into a 64-byte delivery buffer, every byte load/store-
// checked. A benign packet claims 48 bytes; a lying header claims 4096 and
// must be stopped by the checks — on BOTH execution tiers, identically.
constexpr char kBytecodeParse[] = R"(
module "net_bytecode"
declare i8* @kmalloc(i64)
declare void @kfree(i8*)

define i64 @parse_packet(i64 %claimed) {
entry:
  %frame = call i8* @kmalloc(i64 128)
  %out = call i8* @kmalloc(i64 64)
  br label %copy
copy:
  %i = phi i64 [ 0, %entry ], [ %i2, %copy ]
  %src = getelementptr i8* %frame, i64 %i
  %b = load i8, i8* %src
  %dst = getelementptr i8* %out, i64 %i
  store i8 %b, i8* %dst
  %i2 = add i64 %i, 1
  %done = icmp uge i64 %i2, %claimed
  br i1 %done, label %exit, label %copy
exit:
  call void @kfree(i8* %out)
  call void @kfree(i8* %frame)
  ret i64 %i2
}
)";

struct TierParse {
  double ns_per_packet = 0;
  std::string malformed_status;  // Status of the lying-header packet.
};

TierParse MeasureParseTier(svm::ExecTier tier) {
  // Full pipeline, so the copy loop carries the instrumented pchk.* checks
  // exactly like the kernel rx path's bytecode would.
  auto fatal = [](const char* stage, const Status& s) {
    std::fprintf(stderr, "phase 4: %s failed: %s\n", stage,
                 s.ToString().c_str());
    std::exit(1);
  };
  auto parsed = vir::ParseModule(kBytecodeParse);
  if (!parsed.ok()) fatal("parse", parsed.status());
  auto module = std::move(*parsed);
  safety::SafetyCompilerOptions copts;
  auto report = safety::RunSafetyCompiler(*module, copts);
  if (!report.ok()) fatal("safety compile", report.status());
  Status verified = vir::VerifyModule(*module);
  if (!verified.ok()) fatal("verify", verified);
  Status typed = verifier::TypeCheckOrError(*module);
  if (!typed.ok()) fatal("type check", typed);
  svm::SvmOptions options;
  options.interp.tier = tier;
  svm::SecureVirtualMachine vm(options);
  auto load = vm.LoadModule(std::move(module));
  if (!load.ok()) fatal("load", load.status());
  std::unique_ptr<svm::LoadedModule> loaded = std::move(*load);
  auto parse_once = [&](uint64_t claimed) {
    return loaded->Run("parse_packet", {claimed});
  };
  for (int warm = 0; warm < 20; ++warm) {
    svm::ExecResult r = parse_once(48);
    if (!r.status.ok()) {
      std::fprintf(stderr, "phase 4: benign parse failed: %s\n",
                   r.status.ToString().c_str());
      std::exit(1);
    }
  }
  TierParse result;
  bool quick = JsonReport::Get().quick();
  double us = MedianLatencyUs(quick ? 7 : 21, quick ? 50 : 400,
                              [&] { (void)parse_once(48); });
  result.ns_per_packet = us * 1000.0;
  // The lying header: claims 4096 bytes of payload for the 64-byte
  // delivery buffer. The 65th store must trap.
  result.malformed_status = parse_once(4096).status.ToString();
  return result;
}

void RunTierParse() {
  std::printf(
      "Phase 4: rx packet parse as verified bytecode, per execution tier "
      "(safe mode)\n\n");
  TierParse interp = MeasureParseTier(svm::ExecTier::kInterp);
  TierParse threaded = MeasureParseTier(svm::ExecTier::kThreaded);
  Table table({"Engine", "ns/packet", "lying header"});
  table.AddRow({"interpreter", Fmt("%.0f", interp.ns_per_packet),
                interp.malformed_status});
  table.AddRow({"threaded", Fmt("%.0f", threaded.ns_per_packet),
                threaded.malformed_status});
  table.Print();
  if (interp.malformed_status != threaded.malformed_status) {
    std::fprintf(stderr,
                 "tier divergence on malformed packet: interp '%s' vs "
                 "threaded '%s'\n",
                 interp.malformed_status.c_str(),
                 threaded.malformed_status.c_str());
    std::exit(1);
  }
  if (interp.malformed_status.find("SAFETY_VIOLATION") == std::string::npos) {
    std::fprintf(stderr, "malformed packet not caught: %s\n",
                 interp.malformed_status.c_str());
    std::exit(1);
  }
  JsonReport::Get().Add("bytecode parse ns/packet", interp.ns_per_packet,
                        "ns", "tier-interp");
  JsonReport::Get().Add("bytecode parse ns/packet", threaded.ns_per_packet,
                        "ns", "tier-threaded");
  std::printf(
      "\n=> both tiers stop the lying header with the same violation; "
      "threaded parses %.2fx faster.\n",
      threaded.ns_per_packet > 0
          ? interp.ns_per_packet / threaded.ns_per_packet
          : 0);
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "net_throughput");
  unsigned cpus = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
      cpus = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    }
  }
  if (cpus == 0) {
    cpus = 1;
  }
  if (cpus > 8) {
    cpus = 8;  // Worker user buffers tile the 64 KB task address space.
  }
  std::printf("Network throughput over the virtual NIC (--cpus %u)\n\n",
              cpus);
  sva::bench::RunModes();
  sva::bench::RunScaling(cpus);
  sva::bench::RunParity(cpus);
  sva::bench::RunTierParse();
  return sva::bench::JsonReport::Get().Finish();
}
