// Measures the per-metapool object-lookup cache in front of the splay
// trees: check latency, hit rate, and splay comparisons per check with the
// cache enabled vs. disabled, across check streams of varying locality.
// Also replays the Section 7.2 exploit suite in both configurations and
// verifies the detections are identical — the fast path must change cost,
// never outcome.
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "bench/common.h"
#include "src/exploits/exploits.h"
#include "src/runtime/metapool_runtime.h"

namespace sva::bench {
namespace {

using runtime::EnforcementMode;
using runtime::MetaPool;
using runtime::MetaPoolRuntime;

constexpr uint64_t kObjectBase = 0x10000;
constexpr uint64_t kObjectStride = 256;
constexpr uint64_t kObjectSize = 128;

// One synthetic check stream: a sequence of (src, derived) probe pairs.
struct Workload {
  const char* name;
  std::vector<uint64_t> probes;
};

uint64_t ObjectStart(uint64_t index) {
  return kObjectBase + index * kObjectStride;
}

// Offsets stay 16 bytes clear of the object end so that probe+16 derived
// pointers are always in bounds: the micro table measures latency, not
// violation handling (parity on violations is covered by the churn and
// exploit sections below).
uint64_t SafeOffset(size_t i) { return i % (kObjectSize - 16); }

// Check streams modeled on kernel behaviour: most checks hit a handful of
// hot objects (the buffer being copied, the current task struct), with a
// uniform-random stream as the adversarial case.
std::vector<Workload> MakeWorkloads(uint64_t objects, size_t stream_len) {
  std::mt19937_64 rng(42);
  std::vector<Workload> workloads;

  Workload hot{"hot-1 (single object)", {}};
  for (size_t i = 0; i < stream_len; ++i) {
    hot.probes.push_back(ObjectStart(objects / 2) + SafeOffset(i));
  }
  workloads.push_back(std::move(hot));

  Workload rot{"rotate-4 (4 hot objects)", {}};
  for (size_t i = 0; i < stream_len; ++i) {
    rot.probes.push_back(ObjectStart(objects / 2 + i % 4) +
                         SafeOffset(i));
  }
  workloads.push_back(std::move(rot));

  Workload skew{"skewed (90% 8 objects)", {}};
  std::uniform_int_distribution<uint64_t> pct(0, 99);
  std::uniform_int_distribution<uint64_t> any(0, objects - 1);
  std::uniform_int_distribution<uint64_t> hot8(0, 7);
  for (size_t i = 0; i < stream_len; ++i) {
    uint64_t obj = pct(rng) < 90 ? (objects / 2 + hot8(rng)) : any(rng);
    skew.probes.push_back(ObjectStart(obj) + SafeOffset(i));
  }
  workloads.push_back(std::move(skew));

  Workload uni{"uniform (no locality)", {}};
  for (size_t i = 0; i < stream_len; ++i) {
    uni.probes.push_back(ObjectStart(any(rng)) + SafeOffset(i));
  }
  workloads.push_back(std::move(uni));
  return workloads;
}

struct RunResult {
  double ns_per_check = 0;
  double hit_rate = 0;
  double comparisons_per_check = 0;
  uint64_t violations = 0;
};

RunResult RunChecks(const Workload& w, uint64_t objects, bool cache_on) {
  MetaPoolRuntime rt(EnforcementMode::kRecord);
  rt.set_lookup_cache_enabled(cache_on);
  MetaPool* pool = rt.CreatePool("MP", false, 0, true);
  for (uint64_t i = 0; i < objects; ++i) {
    (void)rt.RegisterObject(*pool, ObjectStart(i), kObjectSize);
  }
  rt.ResetStats();

  size_t cursor = 0;
  auto one_pass = [&] {
    const uint64_t probe = w.probes[cursor];
    cursor = cursor + 1 == w.probes.size() ? 0 : cursor + 1;
    (void)rt.BoundsCheck(*pool, probe, probe + 16);
  };
  double us = MedianLatencyUs(9, static_cast<int>(w.probes.size()), one_pass);

  const runtime::CheckStats& stats = rt.stats();
  RunResult r;
  r.ns_per_check = us * 1000.0;
  r.hit_rate = stats.cache_hit_rate();
  r.comparisons_per_check =
      stats.bounds_performed == 0
          ? 0
          : static_cast<double>(stats.splay_comparisons) /
                static_cast<double>(stats.bounds_performed);
  r.violations = stats.total_failed();
  return r;
}

void RunMicrobench() {
  constexpr uint64_t kObjects = 4096;
  constexpr size_t kStream = 4096;
  std::printf("Check fast path: %llu live objects per pool, %zu-probe "
              "streams, median of 9 trials\n\n",
              static_cast<unsigned long long>(kObjects), kStream);
  Table table({"Workload", "cache", "ns/check", "hit rate", "splay cmp/check",
               "violations"});
  for (const Workload& w : MakeWorkloads(kObjects, kStream)) {
    RunResult off = RunChecks(w, kObjects, /*cache_on=*/false);
    RunResult on = RunChecks(w, kObjects, /*cache_on=*/true);
    table.AddRow({w.name, "off", Fmt("%.1f", off.ns_per_check), "-",
                  Fmt("%.2f", off.comparisons_per_check),
                  std::to_string(off.violations)});
    table.AddRow({w.name, "on", Fmt("%.1f", on.ns_per_check),
                  Fmt("%.1f%%", 100.0 * on.hit_rate),
                  Fmt("%.2f", on.comparisons_per_check),
                  std::to_string(on.violations)});
    JsonReport::Get().Add(std::string(w.name) + " ns/check",
                          off.ns_per_check, "ns", "cache-off");
    JsonReport::Get().Add(std::string(w.name) + " ns/check",
                          on.ns_per_check, "ns", "cache-on");
    JsonReport::Get().Add(std::string(w.name) + " hit rate",
                          100.0 * on.hit_rate, "%", "cache-on");
    if (off.violations != on.violations) {
      std::fprintf(stderr,
                   "FAIL: %s: violation counts differ with cache on/off "
                   "(%llu vs %llu)\n",
                   w.name, static_cast<unsigned long long>(off.violations),
                   static_cast<unsigned long long>(on.violations));
      std::exit(1);
    }
  }
  table.Print();
}

// Invalidation stress: interleave drops/re-registrations with checks and
// confirm the cached bounds never go stale (identical outcomes on/off).
void RunChurnParity() {
  std::printf("\nRegister/drop churn parity (cache must never serve stale "
              "bounds):\n\n");
  for (int cache_on = 0; cache_on <= 1; ++cache_on) {
    // Trap mode so a stale cached range surfaces as a Status error on an
    // in-bounds probe (kRecord would mask it by always returning OK).
    MetaPoolRuntime rt(EnforcementMode::kTrap);
    rt.set_lookup_cache_enabled(cache_on != 0);
    MetaPool* pool = rt.CreatePool("MP", false, 0, true);
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<uint64_t> pick(0, 63);
    std::vector<uint64_t> sizes(64, 0);
    uint64_t failures = 0;
    for (int step = 0; step < 200000; ++step) {
      if (step % 4096 == 0) {
        rt.ClearViolations();
      }
      uint64_t obj = pick(rng);
      uint64_t start = ObjectStart(obj);
      switch (step % 8) {
        case 0: {  // Re-register at a new size (smaller or larger).
          if (sizes[obj] != 0) {
            (void)rt.DropObject(*pool, start);
          }
          sizes[obj] = 32 + (step % 3) * 48;
          (void)rt.RegisterObject(*pool, start, sizes[obj]);
          break;
        }
        default: {  // Check against the current size.
          if (sizes[obj] == 0) {
            break;
          }
          // One in-bounds and one out-of-bounds derived pointer.
          if (!rt.BoundsCheck(*pool, start, start + sizes[obj] - 1).ok()) {
            ++failures;
          }
          (void)rt.BoundsCheck(*pool, start, start + sizes[obj]);
          break;
        }
      }
    }
    const runtime::CheckStats& stats = rt.stats();
    std::printf(
        "  cache %-3s: %llu checks, %llu violations (all intended), "
        "in-bounds false positives: %llu, hit rate %.1f%%\n",
        cache_on != 0 ? "on" : "off",
        static_cast<unsigned long long>(stats.bounds_performed),
        static_cast<unsigned long long>(stats.bounds_failed),
        static_cast<unsigned long long>(failures),
        100.0 * stats.cache_hit_rate());
    if (failures != 0) {
      std::fprintf(stderr, "FAIL: stale bounds served with cache %s\n",
                   cache_on != 0 ? "on" : "off");
      std::exit(1);
    }
  }
}

// The acceptance gate: the exploit suite must report identical detections
// and violation counts with the cache enabled and disabled.
void RunExploitParity() {
  std::printf("\nExploit suite parity (Section 7.2), cache on vs off:\n\n");
  Table table({"Exploit", "caught (off)", "caught (on)", "parity"});
  bool all_equal = true;
  for (const exploits::ExploitScenario& s : exploits::AllScenarios()) {
    svm::SvmOptions off_options;
    off_options.interp.use_lookup_cache = false;
    auto off = exploits::RunScenario(s, off_options);
    auto on = exploits::RunScenario(s, svm::SvmOptions{});
    if (!off.ok() || !on.ok()) {
      std::fprintf(stderr, "%s pipeline failed\n", s.id.c_str());
      std::exit(1);
    }
    bool equal = off->caught == on->caught;
    all_equal = all_equal && equal;
    table.AddRow({s.id, off->caught ? "yes" : "no", on->caught ? "yes" : "no",
                  equal ? "identical" : "MISMATCH"});
  }
  table.Print();
  if (!all_equal) {
    std::fprintf(stderr, "FAIL: cache changed exploit detection outcome\n");
    std::exit(1);
  }
  std::printf("\n=> identical detections in both configurations.\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "cache_hit_rates");
  sva::bench::RunMicrobench();
  sva::bench::RunChurnParity();
  sva::bench::RunExploitParity();
  return sva::bench::JsonReport::Get().Finish();
}
