// Tables 1 and 2 microbenchmarks: cost of the individual SVA-OS operations
// (state save/restore, lazy FP save, interrupt context manipulation,
// syscall dispatch, MMU and I/O operations), using google-benchmark.
#include <benchmark/benchmark.h>

#include "bench/common.h"

#include "src/svaos/svaos.h"

namespace sva::bench {
namespace {

struct Fixture {
  Fixture() : os(machine) {
    (void)os.RegisterSyscall(1, [](const svaos::SyscallArgs&)
                                 -> Result<uint64_t> { return 0; });
    (void)os.RegisterInterrupt(32, [](svaos::InterruptContext*) {});
  }
  hw::Machine machine;
  svaos::SvaOS os;
};

void BM_SaveIntegerState(benchmark::State& state) {
  Fixture f;
  svaos::SavedIntegerState buffer;
  for (auto _ : state) {
    f.os.SaveIntegerState(&buffer);
    benchmark::DoNotOptimize(buffer);
  }
}
BENCHMARK(BM_SaveIntegerState);

void BM_LoadIntegerState(benchmark::State& state) {
  Fixture f;
  svaos::SavedIntegerState buffer;
  f.os.SaveIntegerState(&buffer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.os.LoadIntegerState(buffer));
  }
}
BENCHMARK(BM_LoadIntegerState);

void BM_SaveFpStateLazySkip(benchmark::State& state) {
  Fixture f;
  svaos::SavedFpState buffer;
  for (auto _ : state) {
    // FP clean: the lazy save is skipped — the Table 1 fast path.
    benchmark::DoNotOptimize(f.os.SaveFpState(&buffer, /*always=*/false));
  }
}
BENCHMARK(BM_SaveFpStateLazySkip);

void BM_SaveFpStateAlways(benchmark::State& state) {
  Fixture f;
  svaos::SavedFpState buffer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.os.SaveFpState(&buffer, /*always=*/true));
  }
}
BENCHMARK(BM_SaveFpStateAlways);

void BM_SyscallDispatch(benchmark::State& state) {
  Fixture f;
  std::array<uint64_t, 6> args{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.os.Syscall(1, args));
  }
}
BENCHMARK(BM_SyscallDispatch);

void BM_InterruptDispatch(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.os.RaiseInterrupt(32));
  }
}
BENCHMARK(BM_InterruptDispatch);

void BM_IPushFunction(benchmark::State& state) {
  Fixture f;
  (void)f.os.RegisterSyscall(
      2, [&f](const svaos::SyscallArgs& call) -> Result<uint64_t> {
        f.os.IPushFunction(call.icontext, [](uint64_t) {}, 7);
        return 0;
      });
  std::array<uint64_t, 6> args{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.os.Syscall(2, args));
  }
}
BENCHMARK(BM_IPushFunction);

void BM_MmuMapUnmap(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.os.MmuMap(0x100000, 0x2000, hw::kPtePresent | hw::kPteWritable));
    benchmark::DoNotOptimize(f.os.MmuUnmap(0x100000));
  }
}
BENCHMARK(BM_MmuMapUnmap);

void BM_IoWrite(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.os.IoWrite(hw::Machine::kPortTimer, 1));
  }
}
BENCHMARK(BM_IoWrite);

}  // namespace
}  // namespace sva::bench

// Console output plus JSON capture: every finished benchmark run is also
// recorded into the shared --json report.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      sva::bench::JsonReport::Get().Add(
          run.benchmark_name(), run.GetAdjustedRealTime(),
          benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "svaos_ops");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return sva::bench::JsonReport::Get().Finish();
}

