// Table 4 reproduction: "Lines modified in the kernel for the SVA port",
// measured with the paper's methodology applied to our minikernel: every
// line the port touched carries an SVA-PORT(category) marker, and this
// harness counts them per subsystem and category:
//
//   svaos    - privileged code rewritten onto the SVA-OS operations
//   alloc    - allocator-contract changes (Section 4.4/6.2)
//   analysis - changes that improve the safety analysis (Section 6.3)
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"

#ifndef SVA_SOURCE_DIR
#define SVA_SOURCE_DIR "."
#endif

namespace sva::bench {
namespace {

struct FileStats {
  int total_lines = 0;
  int svaos = 0;
  int alloc = 0;
  int analysis = 0;
};

FileStats ScanFile(const std::string& path) {
  FileStats stats;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    ++stats.total_lines;
    if (line.find("SVA-PORT(svaos)") != std::string::npos) {
      ++stats.svaos;
    }
    if (line.find("SVA-PORT(alloc)") != std::string::npos) {
      ++stats.alloc;
    }
    if (line.find("SVA-PORT(analysis)") != std::string::npos) {
      ++stats.analysis;
    }
  }
  return stats;
}

struct Subsystem {
  std::string name;
  std::vector<std::string> files;
  // The architecture-dependent layer is rewritten wholesale for the port
  // (the paper's arch/llvm counts 4777 of 29237 lines): count every line
  // as SVA-OS porting work.
  bool whole_layer_is_port = false;
};

void Run() {
  const std::string root = SVA_SOURCE_DIR;
  std::vector<Subsystem> subsystems = {
      {"Arch-indep core (kernel.cc/h)",
       {root + "/src/kernel/kernel.cc", root + "/src/kernel/kernel.h",
        root + "/src/kernel/config.h"}},
      {"Allocators (alloc.cc/h)",
       {root + "/src/kernel/alloc.cc", root + "/src/kernel/alloc.h"}},
      {"Arch-dep layer (svaos port)",
       {root + "/src/svaos/svaos.cc", root + "/src/svaos/svaos.h"},
       /*whole_layer_is_port=*/true},
  };

  std::printf(
      "Table 4: lines modified for the SVA port of the minikernel "
      "(SVA-PORT markers)\n\n");
  Table table({"Section", "Total LOC", "SVA-OS", "Allocators", "Analysis",
               "% of total"});
  int grand_total = 0;
  int grand_changed = 0;
  for (const Subsystem& sub : subsystems) {
    FileStats stats;
    for (const std::string& file : sub.files) {
      FileStats fs = ScanFile(file);
      if (fs.total_lines == 0) {
        std::fprintf(stderr, "warning: could not read %s\n", file.c_str());
      }
      stats.total_lines += fs.total_lines;
      stats.svaos += fs.svaos;
      stats.alloc += fs.alloc;
      stats.analysis += fs.analysis;
    }
    if (sub.whole_layer_is_port) {
      stats.svaos = stats.total_lines;
    }
    int changed = stats.svaos + stats.alloc + stats.analysis;
    if (!sub.whole_layer_is_port) {
      // The "Total indep" row of the paper covers only the architecture-
      // independent kernel.
      grand_total += stats.total_lines;
      grand_changed += changed;
    }
    table.AddRow({sub.name, std::to_string(stats.total_lines),
                  std::to_string(stats.svaos), std::to_string(stats.alloc),
                  std::to_string(stats.analysis),
                  Fmt("%.2f%%", stats.total_lines == 0
                                    ? 0
                                    : 100.0 * changed / stats.total_lines)});
    JsonReport::Get().Add(sub.name + " changed", changed, "lines");
    JsonReport::Get().Add(sub.name + " total", stats.total_lines, "lines");
  }
  table.AddRow({"Total indep", std::to_string(grand_total), "", "", "",
                Fmt("%.2f%%",
                    grand_total == 0 ? 0
                                     : 100.0 * grand_changed / grand_total)});
  JsonReport::Get().Add("total-indep changed", grand_changed, "lines");
  JsonReport::Get().Add("total-indep total", grand_total, "lines");
  table.Print();
  std::printf(
      "\nShape check vs paper: architecture-independent changes are a "
      "fraction of a percent\nof the kernel; the architecture-dependent "
      "layer (the SVA-OS port itself) is where\nthe work concentrates.\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "table4_porting_effort");
  sva::bench::Run();
  return sva::bench::JsonReport::Get().Finish();
}
