// Virtual-memory microbenchmarks: page-fault service latency (demand fill,
// TLB hit, TLB conflict-miss refill, COW break), fork latency with the COW
// and eager-copy backends, and TLB-shootdown cost as the virtual-CPU count
// grows (single-page invalidation vs full-asid flush).
//
// The fault/shootdown numbers drive the mm layer directly (VmManager on a
// fresh Machine + SvaOS); the fork comparison goes through the whole
// minikernel syscall path so it prices exactly what SysFork does, with the
// child reaped outside the timed region.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"
#include "src/hw/machine.h"
#include "src/mm/frame_allocator.h"
#include "src/mm/vm.h"
#include "src/svaos/svaos.h"

namespace {

using sva::bench::BootedKernel;
using sva::bench::Fmt;
using sva::bench::JsonReport;
using sva::bench::MedianLatencyUs;
using sva::bench::Table;
using sva::bench::TimeOnceUs;

constexpr uint64_t kAsBase = 0x40000000;

// One mm stack (machine, SVA-OS, allocator, manager) per measurement so
// earlier phases never warm later ones.
struct MmStack {
  explicit MmStack(unsigned cpus)
      : machine(512ull << 20, 16384), os(machine), frames(machine, os),
        vm(os, frames) {
    os.ConfigureCpus(cpus);
    sva::Status s = vm.Init();
    assert(s.ok());
    (void)s;
  }
  sva::hw::Machine machine;
  sva::svaos::SvaOS os;
  sva::mm::FrameAllocator frames;
  sva::mm::VmManager vm;
};

uint64_t MustResolve(sva::mm::VmManager& vm, sva::mm::AddressSpace& as,
                     uint64_t vaddr, bool write) {
  auto r = vm.Resolve(as, vaddr, write);
  assert(r.ok());
  return *r;
}

// First-touch cost of fresh anonymous pages: each access allocates, zeroes,
// and maps a frame. Fresh address space per repetition (pages can only be
// faulted in once).
double DemandFillNs(int reps, uint64_t pages) {
  MmStack s(1);
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    auto as = s.vm.CreateAddressSpace(kAsBase, pages, pages);
    assert(as.ok());
    double us = TimeOnceUs([&] {
      for (uint64_t p = 0; p < pages; ++p) {
        MustResolve(s.vm, **as, kAsBase + p * sva::hw::kPageSize, true);
      }
    });
    samples.push_back(us * 1000.0 / static_cast<double>(pages));
    sva::Status st = s.vm.Destroy(**as);
    assert(st.ok());
    (void)st;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// The user-copy hot path: a resident, writable page whose entry stays in
// the per-CPU TLB.
double TlbHitNs(int reps, int iters) {
  MmStack s(1);
  auto as = s.vm.CreateAddressSpace(kAsBase, 4, 4);
  assert(as.ok());
  MustResolve(s.vm, **as, kAsBase, true);
  return 1000.0 * MedianLatencyUs(reps, iters, [&] {
    MustResolve(s.vm, **as, kAsBase + 64, false);
  });
}

// Conflict-miss refill: cycle over 2x the TLB's 64 slots so every access
// evicts the entry the next lap needs — each resolve walks the page table
// under the MMU lock and refills.
double TlbMissRefillNs(int reps, int laps) {
  constexpr uint64_t kPages = 128;
  MmStack s(1);
  auto as = s.vm.CreateAddressSpace(kAsBase, kPages, kPages);
  assert(as.ok());
  for (uint64_t p = 0; p < kPages; ++p) {
    MustResolve(s.vm, **as, kAsBase + p * sva::hw::kPageSize, true);
  }
  uint64_t next = 0;
  double per_lap_us = MedianLatencyUs(reps, laps, [&] {
    MustResolve(s.vm, **as,
                kAsBase + (next % kPages) * sva::hw::kPageSize, false);
    ++next;
  });
  return 1000.0 * per_lap_us;
}

// COW break with a live sharer: fork the space, then price the child's
// first write per page (fault + frame copy + remap + shootdown).
double CowBreakNs(int reps, uint64_t pages) {
  MmStack s(1);
  auto parent = s.vm.CreateAddressSpace(kAsBase, pages, pages);
  assert(parent.ok());
  for (uint64_t p = 0; p < pages; ++p) {
    MustResolve(s.vm, **parent, kAsBase + p * sva::hw::kPageSize, true);
  }
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    auto child = s.vm.CreateAddressSpace(kAsBase, pages, pages);
    assert(child.ok());
    sva::Status st = s.vm.CloneCow(**parent, **child);
    assert(st.ok());
    double us = TimeOnceUs([&] {
      for (uint64_t p = 0; p < pages; ++p) {
        MustResolve(s.vm, **child, kAsBase + p * sva::hw::kPageSize, true);
      }
    });
    samples.push_back(us * 1000.0 / static_cast<double>(pages));
    st = s.vm.Destroy(**child);
    assert(st.ok());
    (void)st;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Fork through the kernel: parent faults `pages` in, then SysFork is timed
// alone; running and reaping the child happens outside the clock.
double ForkNs(bool cow, int reps, uint64_t pages) {
  sva::hw::Machine machine(512ull << 20, 16384);
  sva::kernel::KernelConfig config;
  config.mode = sva::kernel::KernelMode::kNative;
  config.cow_fork = cow;
  config.max_user_pages_per_task = 256;
  sva::kernel::Kernel kernel(machine, config);
  sva::Status boot = kernel.Boot();
  assert(boot.ok());
  (void)boot;
  auto call = [&kernel](sva::kernel::Sys n, uint64_t a0 = 0) {
    auto r = kernel.Syscall(n, a0);
    assert(r.ok());
    return *r;
  };
  const uint64_t user =
      sva::kernel::kUserVirtualBase +
      static_cast<uint64_t>(kernel.current_pid()) * 0x100000;
  call(sva::kernel::Sys::kBrk, pages * sva::hw::kPageSize);
  const char byte = 1;
  for (uint64_t p = 0; p < pages; ++p) {
    sva::Status st =
        kernel.PokeUser(user + p * sva::hw::kPageSize, &byte, 1);
    assert(st.ok());
    (void)st;
  }
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    uint64_t child = 0;
    samples.push_back(1000.0 * TimeOnceUs([&] {
      child = call(sva::kernel::Sys::kFork);
    }));
    // Reap: switch to the child, exit it, collect it from the parent.
    while (kernel.current_pid() != static_cast<int>(child)) {
      sva::Status st = kernel.Yield();
      assert(st.ok());
      (void)st;
    }
    call(sva::kernel::Sys::kExit, 0);
    call(sva::kernel::Sys::kWaitPid, child);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Shootdown round cost as CPUs scale: every configured CPU's TLB is probed
// (and the non-initiating ones take the IPI), so the cost is linear in the
// CPU count — the number the kernel pays on every COW break and unmap.
double ShootdownNs(unsigned cpus, bool entire_asid, int reps, int iters) {
  MmStack s(cpus);
  auto as = s.vm.CreateAddressSpace(kAsBase, 4, 4);
  assert(as.ok());
  MustResolve(s.vm, **as, kAsBase, true);
  return 1000.0 * MedianLatencyUs(reps, iters, [&] {
    sva::Status st = s.os.TlbShootdown((*as)->asid(), kAsBase, entire_asid);
    assert(st.ok());
    (void)st;
  });
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport& report = JsonReport::Get();
  report.Init(&argc, argv, "vm_ops");
  const bool quick = report.quick();
  const int reps = quick ? 3 : 5;
  const uint64_t fill_pages = quick ? 256 : 1024;
  const uint64_t fork_pages = quick ? 64 : 224;

  std::printf("vm_ops: page-fault, fork, and TLB-shootdown latency%s\n\n",
              quick ? " (quick)" : "");

  Table faults({"fault path", "ns/op"});
  struct FaultRow {
    const char* metric;
    double ns;
  };
  const FaultRow fault_rows[] = {
      {"fault.demand_fill", DemandFillNs(reps, fill_pages)},
      {"fault.tlb_hit", TlbHitNs(reps, quick ? 2000 : 20000)},
      {"fault.tlb_miss_refill", TlbMissRefillNs(reps, quick ? 512 : 4096)},
      {"fault.cow_break_copy", CowBreakNs(reps, fill_pages / 4)},
  };
  for (const FaultRow& row : fault_rows) {
    faults.AddRow({row.metric, Fmt("%.1f", row.ns)});
    report.Add(row.metric, row.ns, "ns");
  }
  faults.Print();

  std::printf("\nfork latency, %llu resident pages (child reaped off the "
              "clock):\n",
              static_cast<unsigned long long>(fork_pages));
  Table forks({"backend", "ns/fork"});
  const double cow_ns = ForkNs(/*cow=*/true, reps, fork_pages);
  const double eager_ns = ForkNs(/*cow=*/false, reps, fork_pages);
  forks.AddRow({"cow", Fmt("%.0f", cow_ns)});
  forks.AddRow({"eager", Fmt("%.0f", eager_ns)});
  forks.Print();
  std::printf("cow is %.2fx cheaper than the eager copy\n",
              cow_ns > 0 ? eager_ns / cow_ns : 0.0);
  report.Add("fork.latency", cow_ns, "ns", "cow");
  report.Add("fork.latency", eager_ns, "ns", "eager");
  report.Add("fork.touched_pages", static_cast<double>(fork_pages), "pages");

  std::printf("\nTLB shootdown (initiator-side, synchronous round):\n");
  Table shoot({"mode", "cpus", "ns/op"});
  const int shoot_iters = quick ? 1000 : 10000;
  for (bool entire_asid : {false, true}) {
    const char* mode = entire_asid ? "asid" : "page";
    for (unsigned cpus : {1u, 2u, 4u}) {
      double ns = ShootdownNs(cpus, entire_asid, reps, shoot_iters);
      shoot.AddRow({mode, std::to_string(cpus), Fmt("%.1f", ns)});
      report.Add("shootdown.latency", ns, "ns", mode, cpus);
    }
  }
  shoot.Print();

  return report.Finish();
}
