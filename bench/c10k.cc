// The c10k benchmark: 10,000+ concurrent virtual stream connections served
// through the event-driven I/O path — SO_REUSEPORT-style accept shards (one
// listener + one event queue per worker), kEvqWait readiness dispatch, and
// NAPI-batched rx underneath (the loopback client injects in batch mode, so
// the virtual NIC takes one interrupt per ring burst instead of one per
// frame).
//
// Shape: a driver thread plays the client side of the wire (the device
// model is single-threaded, like real hardware behind one irq line) while
// --cpus worker threads run the server loop evq_wait -> accept -> recv ->
// send on their own virtual CPUs. The connection storm is injected in
// NIC-ring-sized bursts with no accept pacing: listener backlogs grow
// dynamically under SYN pressure (doubling toward the configured ceiling,
// like the fd table), so the whole storm lands without a drop.
//
// Reported: concurrent connections held, requests/sec across all workers,
// per-request p50/p99 latency (send-to-reply, including queueing behind
// the other 9,999 connections — the number the c10k problem is about), and
// rx interrupts per frame (the NAPI win; < 1 is the acceptance bar).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"
#include "src/net/client.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/drainer.h"
#include "src/trace/profiler.h"
#include "src/trace/trace.h"

namespace sva::bench {
namespace {

using kernel::Sys;

constexpr uint16_t kPort = 80;
constexpr int kDefaultConns = 10000;
// SYNs injected per Flush during the storm: half the rx ring, so a burst
// never overruns the 256-descriptor ring even when every frame lands
// before the first poll pass.
constexpr int kStormChunk = 128;

struct ModeResult {
  int conns = 0;
  double reqs_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double storm_ms = 0;
  double irqs_per_frame = 0;
};

void Die(const char* what, const Status& s) {
  std::fprintf(stderr, "c10k: %s: %s\n", what, s.ToString().c_str());
  std::exit(1);
}

ModeResult RunMode(kernel::KernelMode mode, unsigned workers, int conns,
                   int rounds) {
  BootedKernel harness(mode);
  kernel::Kernel& k = harness.k();
  net::LoopbackClient client(*k.net());
  client.set_batch_mode(true);

  auto sys = [&k](Sys n, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0,
                  uint64_t a3 = 0) -> uint64_t {
    auto r = k.Syscall(n, a0, a1, a2, a3);
    if (!r.ok()) {
      Die("syscall transport", r.status());
    }
    return *r;
  };

  // One accept shard per worker: a reuse-port listener plus an event queue
  // with the listener registered. Set up before the threads race.
  std::vector<uint64_t> listeners(workers);
  std::vector<uint64_t> evqs(workers);
  for (unsigned w = 0; w < workers; ++w) {
    listeners[w] = sys(
        Sys::kSocket, static_cast<uint64_t>(kernel::SocketDomain::kListener));
    if (sys(Sys::kBind, listeners[w], kPort, /*reuse=*/1) != 0) {
      Die("bind shard", Internal("bind failed"));
    }
    evqs[w] = sys(Sys::kEvqCreate);
    if (sys(Sys::kEvqCtl, evqs[w], kernel::kEvqCtlAdd, listeners[w],
            listeners[w]) != 0) {
      Die("register shard", Internal("evq_ctl failed"));
    }
  }

  // The canned response every worker serves, staged once in user memory
  // above the per-worker scratch regions (w * 0x1000, w < 8).
  const std::string request = "GET /c10k HTTP/1.0\r\n\r\n";
  const std::string response = "HTTP/1.0 200 OK\r\n\r\nc10k-ok\n";
  const uint64_t resp_uaddr = harness.user(0x8000);
  Status poked = k.PokeUser(resp_uaddr, response.data(), response.size());
  if (!poked.ok()) {
    Die("stage response", poked);
  }

  std::atomic<int> accepted{0};
  std::atomic<int> served{0};
  std::atomic<int> closed{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  k.svaos().ConfigureCpus(workers + 1);

  std::vector<std::thread> threads;
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      smp::ScopedCpu bind(w);
      const uint64_t wait_buf = harness.user(w * 0x1000);
      const uint64_t rx_buf = harness.user(w * 0x1000 + 0x400);
      while (!stop.load(std::memory_order_acquire)) {
        auto waited = k.Syscall(Sys::kEvqWait, evqs[w], wait_buf, 64, 200);
        if (!waited.ok() || *waited >= (1ull << 32)) {
          failed.store(true);
          return;
        }
        for (uint64_t i = 0; i < *waited; ++i) {
          uint8_t raw[16];
          if (!k.PeekUser(wait_buf + i * 16, raw, 16).ok()) {
            failed.store(true);
            return;
          }
          uint32_t fd;
          std::memcpy(&fd, raw + 12, 4);
          if (fd == listeners[w]) {
            while (true) {
              auto conn = k.Syscall(Sys::kAccept, listeners[w]);
              if (!conn.ok() || *conn == static_cast<uint64_t>(-11)) {
                break;  // EAGAIN: backlog drained.
              }
              auto added = k.Syscall(Sys::kEvqCtl, evqs[w],
                                     kernel::kEvqCtlAdd, *conn, *conn);
              if (*conn >= (1ull << 32) || !added.ok() || *added != 0) {
                failed.store(true);
                return;
              }
              accepted.fetch_add(1, std::memory_order_acq_rel);
            }
            continue;
          }
          auto got = k.Syscall(Sys::kRecv, fd, rx_buf, 1024);
          if (!got.ok()) {
            failed.store(true);
            return;
          }
          if (*got == 0) {
            // EOF after the client's FIN: tear the connection down.
            (void)k.Syscall(Sys::kEvqCtl, evqs[w], kernel::kEvqCtlDel, fd);
            (void)k.Syscall(Sys::kClose, fd);
            closed.fetch_add(1, std::memory_order_acq_rel);
          } else if (*got < (1ull << 32)) {
            auto sent = k.Syscall(Sys::kSend, fd, resp_uaddr,
                                  response.size());
            if (!sent.ok() || *sent != response.size()) {
              failed.store(true);
              return;
            }
            served.fetch_add(1, std::memory_order_acq_rel);
          }
          // EAGAIN (stale level hint): nothing to do.
        }
      }
    });
  }

  // The driver owns the NIC from here on.
  smp::ScopedCpu driver_cpu(workers);

  // Phase A: the connection storm. Bursts are bounded only by the NIC rx
  // ring; the growing accept backlogs absorb the un-accepted herd, and the
  // storm waits for the workers once, at the end.
  std::vector<int> handles;
  handles.reserve(static_cast<size_t>(conns));
  double storm_us = TimeOnceUs([&] {
    int opened = 0;
    while (opened < conns && !failed.load()) {
      int chunk = std::min(kStormChunk, conns - opened);
      for (int i = 0; i < chunk; ++i) {
        auto h = client.OpenStream(kPort);
        if (!h.ok()) {
          Die("open stream", h.status());
        }
        handles.push_back(*h);
      }
      opened += chunk;
      client.Flush();
    }
    while (accepted.load(std::memory_order_acquire) < conns &&
           !failed.load()) {
      std::this_thread::yield();
    }
  });

  // Phase B: request rounds. Every connection gets one request per round;
  // latency is send-to-full-reply, so it includes the time a request spends
  // queued behind the rest of the herd.
  std::vector<uint64_t> t_send(static_cast<size_t>(conns));
  std::vector<uint64_t> have(static_cast<size_t>(conns));
  std::vector<double> lat_us;
  lat_us.reserve(static_cast<size_t>(conns) * rounds);
  double total_us = TimeOnceUs([&] {
    for (int r = 0; r < rounds && !failed.load(); ++r) {
      std::fill(have.begin(), have.end(), 0);
      for (int c = 0; c < conns; ++c) {
        t_send[static_cast<size_t>(c)] = trace::NowNs();
        Status s = client.SendStream(handles[static_cast<size_t>(c)],
                                     request);
        if (!s.ok()) {
          Die("send request", s);
        }
      }
      client.Flush();
      for (int c = 0; c < conns && !failed.load(); ++c) {
        size_t idx = static_cast<size_t>(c);
        uint64_t deadline = trace::NowNs() + 60ull * 1000 * 1000 * 1000;
        while (have[idx] < response.size()) {
          have[idx] += client.TakeStream(handles[idx]).size();
          if (have[idx] >= response.size()) {
            break;
          }
          client.Flush();
          std::this_thread::yield();
          if (trace::NowNs() > deadline) {
            Die("reply wait", Internal("connection starved for 60s"));
          }
        }
        lat_us.push_back(
            static_cast<double>(trace::NowNs() - t_send[idx]) / 1000.0);
      }
    }
  });

  // Phase C: FIN every connection; workers observe HUP, deregister, close.
  for (int c = 0; c < conns; ++c) {
    Status s = client.CloseStream(handles[static_cast<size_t>(c)]);
    if (!s.ok()) {
      Die("close stream", s);
    }
  }
  client.Flush();
  while (closed.load(std::memory_order_acquire) < conns && !failed.load()) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) {
    t.join();
  }

  const net::NetStats& ns = k.net()->stats();
  if (failed.load() || accepted.load() != conns ||
      served.load() != conns * rounds || closed.load() != conns ||
      ns.rx_violations.load() != 0 || ns.rx_queue_drops.load() != 0) {
    std::fprintf(stderr,
                 "c10k: integrity failure (accepted %d/%d, served %d/%d, "
                 "closed %d/%d, violations %llu, drops %llu)\n",
                 accepted.load(), conns, served.load(), conns * rounds,
                 closed.load(), conns,
                 static_cast<unsigned long long>(ns.rx_violations.load()),
                 static_cast<unsigned long long>(ns.rx_queue_drops.load()));
    std::exit(1);
  }

  ModeResult result;
  result.conns = conns;
  result.storm_ms = storm_us / 1000.0;
  result.reqs_per_sec =
      static_cast<double>(conns) * rounds / total_us * 1e6;
  std::sort(lat_us.begin(), lat_us.end());
  result.p50_us = lat_us[lat_us.size() / 2];
  result.p99_us = lat_us[lat_us.size() * 99 / 100];
  uint64_t irqs = ns.rx_irqs.load();
  uint64_t frames = ns.rx_frames_polled.load();
  result.irqs_per_frame =
      frames == 0 ? 0.0
                  : static_cast<double>(irqs) / static_cast<double>(frames);
  return result;
}

void Run(bool quick, unsigned workers, int conns) {
  const int rounds = quick ? 1 : 5;
  std::printf(
      "c10k: %d concurrent stream connections, %u accept shards, "
      "%d request round%s per mode\n\n",
      conns, workers, rounds, rounds == 1 ? "" : "s");
  Table table({"Mode", "Conns", "Storm (ms)", "Req/s", "p50 (us)",
               "p99 (us)", "IRQ/frame"});
  // --quick (the ctest gate) measures the checked kernel only; the full run
  // adds the native baseline for the overhead story.
  std::vector<kernel::KernelMode> modes = {kernel::KernelMode::kSvaSafe};
  if (!quick) {
    modes.insert(modes.begin(), kernel::KernelMode::kNative);
  }
  for (kernel::KernelMode mode : modes) {
    ModeResult r = RunMode(mode, workers, conns, rounds);
    const char* name = kernel::KernelModeName(mode);
    table.AddRow({name, Fmt("%.0f", r.conns), Fmt("%.1f", r.storm_ms),
                  Fmt("%.0f", r.reqs_per_sec), Fmt("%.1f", r.p50_us),
                  Fmt("%.1f", r.p99_us), Fmt("%.4f", r.irqs_per_frame)});
    JsonReport::Get().Add("concurrent connections", r.conns, "conns", name,
                          workers);
    JsonReport::Get().Add("requests/sec", r.reqs_per_sec, "reqs/s", name,
                          workers);
    JsonReport::Get().Add("latency p50", r.p50_us, "us", name, workers);
    JsonReport::Get().Add("latency p99", r.p99_us, "us", name, workers);
    JsonReport::Get().Add("conn storm", r.storm_ms, "ms", name, workers);
    JsonReport::Get().Add("rx irqs per frame", r.irqs_per_frame,
                          "irq/frame", name, workers);
  }
  table.Print();
  std::printf(
      "\np50/p99 include queueing behind the whole connection herd (the "
      "c10k number).\nIRQ/frame << 1 is the NAPI batching win: the rx ring "
      "is drained by budgeted polls,\nnot one interrupt per frame.\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  auto& report = sva::bench::JsonReport::Get();
  report.Init(&argc, argv, "c10k");
  unsigned workers = 2;
  int conns = sva::bench::kDefaultConns;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
      workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--conns") == 0 && i + 1 < argc) {
      conns = std::atoi(argv[++i]);
    }
  }
  // Worker user-scratch regions are laid out at w * 0x1000 below the
  // response page at 0x8000.
  workers = std::max(1u, std::min(workers, 8u));
  conns = std::max(1, conns);

  // --trace-out: record the run with the continuous-drain consumer (the
  // per-CPU rings hold 8192 events; a c10k run emits far more, so the final
  // Drain() alone would only cover the tail).
  sva::trace::ContinuousDrainer drainer;
  if (!report.trace_out().empty()) {
    sva::trace::Tracer::Get().Enable(sva::trace::kModeFull);
    drainer.Start();
  }
  // --profile: sample every worker CPU (workers bind CPUs [0, workers))
  // plus the driver thread on CPU 0, exporting folded stacks and a top-5
  // attribution block in the JSON report.
  if (!report.profile_out().empty()) {
    sva::trace::Profiler::Options popts;
    popts.num_cpus = workers;
    if (!sva::trace::Profiler::Get().Start(popts)) {
      std::fprintf(stderr, "cannot start profiler\n");
      return 1;
    }
  }
  sva::bench::Run(report.quick(), workers, conns);
  if (!report.profile_out().empty()) {
    sva::trace::Profiler& prof = sva::trace::Profiler::Get();
    prof.Stop();
    if (!prof.WriteFolded(report.profile_out())) {
      std::fprintf(stderr, "cannot write profile to %s\n",
                   report.profile_out().c_str());
      return 1;
    }
    report.Add("prof samples", static_cast<double>(prof.stats().samples),
               "samples");
    for (const auto& [stack, count] : prof.TopStacks(5)) {
      report.Add("prof top stack", static_cast<double>(count), "samples",
                 stack);
    }
  }
  if (!report.trace_out().empty()) {
    sva::trace::Tracer::Get().Disable();
    std::vector<sva::trace::Event> events = drainer.Stop();
    sva::Status written =
        sva::trace::WriteChromeTrace(report.trace_out(), events);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace events to %s (%llu lost)\n",
                 events.size(), report.trace_out().c_str(),
                 static_cast<unsigned long long>(
                     sva::trace::Tracer::Get().events_lost()));
  }
  return report.Finish();
}
