// Table 8 reproduction: "Bandwidth reduction for raw kernel operations as a
// percentage of Linux native performance" — HBench-OS style file-read and
// pipe bandwidth at 32k/64k/128k transfer sizes across the four kernels.
//
// Expected shape (paper): file reads lose little (~1-8%); pipes lose much
// more under safety checks (~50-66%) because every ring-buffer transfer is
// bounds-checked.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"

namespace sva::bench {
namespace {

using kernel::Sys;

// Reads `size` bytes from a prepared file with large (32 KiB) read calls,
// as HBench's bw_file_rd does.
double FileReadMBps(BootedKernel& k, uint64_t fd, uint64_t size) {
  double us = MedianLatencyUs(15, 4, [&] {
    k.Call(Sys::kLseek, fd, 0, 0);
    for (uint64_t done = 0; done < size;) {
      uint64_t n = std::min<uint64_t>(32 * 1024, size - done);
      k.Call(Sys::kRead, fd, k.user(16384), n);
      done += n;
    }
  });
  return static_cast<double>(size) / us;  // bytes/us == MB/s.
}

double PipeMBps(BootedKernel& k, uint32_t rfd, uint32_t wfd, uint64_t size) {
  double us = MedianLatencyUs(15, 4, [&] {
    for (uint64_t done = 0; done < size;) {
      uint64_t n = std::min<uint64_t>(4096, size - done);
      k.Call(Sys::kWrite, wfd, k.user(4096), n);
      k.Call(Sys::kRead, rfd, k.user(8192), n);
      done += n;
    }
  });
  return static_cast<double>(size) / us;
}

void Run() {
  std::printf(
      "Table 8: bandwidth of raw kernel operations (file read and pipe)\n\n");
  Table table({"Test", "Native (MB/s)", "SVA gcc (%)", "SVA llvm (%)",
               "SVA Safe (%)"});
  const uint64_t kSizes[] = {32 * 1024, 64 * 1024, 128 * 1024};

  for (uint64_t size : kSizes) {
    double mbps[4];
    for (int m = 0; m < 4; ++m) {
      BootedKernel k(kAllModes[m]);
      uint64_t fd = k.OpenFile("/bench/file");
      k.FillFile(fd, size);
      mbps[m] = FileReadMBps(k, fd, size);
    }
    table.AddRow({"file read (" + std::to_string(size / 1024) + "k)",
                  Fmt("%.1f", mbps[0]),
                  Fmt("%.1f", -OverheadPct(mbps[0], mbps[1])),
                  Fmt("%.1f", -OverheadPct(mbps[0], mbps[2])),
                  Fmt("%.1f", -OverheadPct(mbps[0], mbps[3]))});
    for (int m = 0; m < 4; ++m) {
      JsonReport::Get().Add("file read " + std::to_string(size / 1024) + "k",
                            mbps[m], "MB/s",
                            kernel::KernelModeName(kAllModes[m]));
    }
  }
  for (uint64_t size : kSizes) {
    double mbps[4];
    for (int m = 0; m < 4; ++m) {
      BootedKernel k(kAllModes[m]);
      k.Call(Sys::kPipe, k.user(128));
      uint32_t fds[2];
      (void)k.k().PeekUser(k.user(128), fds, 8);
      mbps[m] = PipeMBps(k, fds[0], fds[1], size);
    }
    table.AddRow({"pipe (" + std::to_string(size / 1024) + "k)",
                  Fmt("%.1f", mbps[0]),
                  Fmt("%.1f", -OverheadPct(mbps[0], mbps[1])),
                  Fmt("%.1f", -OverheadPct(mbps[0], mbps[2])),
                  Fmt("%.1f", -OverheadPct(mbps[0], mbps[3]))});
    for (int m = 0; m < 4; ++m) {
      JsonReport::Get().Add("pipe " + std::to_string(size / 1024) + "k",
                            mbps[m], "MB/s",
                            kernel::KernelModeName(kAllModes[m]));
    }
  }
  table.Print();
  std::printf(
      "\n(Positive numbers are bandwidth REDUCTION vs native, as in the "
      "paper.)\nShape check: pipes suffer more than file reads under safety "
      "checks.\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "table8_kernel_bandwidth");
  sva::bench::Run();
  return sva::bench::JsonReport::Get().Finish();
}
