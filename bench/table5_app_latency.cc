// Table 5 reproduction: "Application latency increase as a percentage of
// Linux native performance". The paper ran bzip2, lame, gcc, ldd, scp, and
// thttpd; here each is a synthetic workload with the same kernel-time
// profile (the column that determines the overhead shape):
//
//   bzip2-like  : compute-heavy with periodic file reads  (~16% sys time)
//   lame-like   : FP-compute-heavy, almost no kernel time  (~1%)
//   gcc-like    : mixed compute + open/read/close of many small files (~4%)
//   ldd-like    : open/close dominated                      (~56%)
//   scp-like    : bulk socket + file traffic
//   thttpd-like : request loop serving a small file over sockets
//
// Expected shape: compute-bound apps see little overhead; syscall-heavy
// ones (ldd, small-file serving) see the most, and most of it comes from
// the safety checks, not the SVA-OS port.
#include <cstdio>
#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/kernel_harness.h"

namespace sva::bench {
namespace {

using kernel::Sys;

// Userspace compute kernels (run outside the kernel; identical across
// configurations — they dilute kernel overhead exactly as app time does).
uint64_t ComputeInt(uint64_t iters) {
  volatile uint64_t acc = 0x9E3779B97F4A7C15ull;
  for (uint64_t i = 0; i < iters; ++i) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    acc = acc ^ (acc >> 29);
  }
  return acc;
}

double ComputeFp(uint64_t iters) {
  volatile double acc = 1.0;
  for (uint64_t i = 0; i < iters; ++i) {
    acc = acc * 1.0000001 + 0.5;
    acc = acc / 1.0000002;
  }
  return acc;
}

struct App {
  std::string name;
  std::string sys_profile;
  std::function<void(BootedKernel&)> run;
  int repetitions = 9;
};

std::vector<App> BuildApps() {
  std::vector<App> apps;
  apps.push_back(
      {"bzip2-like (compress)", "~16% sys", [](BootedKernel& k) {
         uint64_t fd = k.OpenFile("/bench/input");
         for (int block = 0; block < 24; ++block) {
           k.Call(Sys::kLseek, fd, 0, 0);
           k.Call(Sys::kRead, fd, k.user(4096), 4096);
           ComputeInt(60000);
         }
         k.Call(Sys::kClose, fd);
       }});
  apps.push_back({"lame-like (mp3 encode)", "~1% sys", [](BootedKernel& k) {
                    for (int frame = 0; frame < 8; ++frame) {
                      ComputeFp(250000);
                      k.Call(Sys::kWrite, 0, k.user(1024), 128);
                    }
                  }});
  apps.push_back(
      {"gcc-like (compile)", "~4% sys", [](BootedKernel& k) {
         for (int unit = 0; unit < 12; ++unit) {
           uint64_t fd =
               k.OpenFile("/bench/hdr" + std::to_string(unit % 4));
           k.Call(Sys::kWrite, fd, k.user(4096), 2048);
           k.Call(Sys::kLseek, fd, 0, 0);
           k.Call(Sys::kRead, fd, k.user(4096), 2048);
           k.Call(Sys::kClose, fd);
           ComputeInt(60000);
         }
       }});
  apps.push_back(
      {"ldd-like (library scan)", "~56% sys", [](BootedKernel& k) {
         for (int lib = 0; lib < 1200; ++lib) {
           uint64_t fd =
               k.OpenFile("/lib/lib" + std::to_string(lib % 8));
           k.Call(Sys::kRead, fd, k.user(4096), 512);
           k.Call(Sys::kClose, fd);
         }
         ComputeInt(240000);
       }});
  apps.push_back(
      {"scp-like (bulk transfer)", "bulk I/O", [](BootedKernel& k) {
         uint64_t sock = k.Call(Sys::kSocket);
         uint64_t fd = k.OpenFile("/bench/out");
         for (int chunk = 0; chunk < 640; ++chunk) {
           k.Call(Sys::kSend, sock, k.user(4096), 4096);
           k.Call(Sys::kRecv, sock, k.user(8192), 4096);
           k.Call(Sys::kWrite, fd, k.user(8192), 4096);
           ComputeInt(4000);  // Cipher cost.
         }
         k.Call(Sys::kClose, fd);
         k.Call(Sys::kClose, sock);
       }});
  apps.push_back(
      {"thttpd-like (311B x 2000 req)", "request loop", [](BootedKernel& k) {
         uint64_t fd = k.OpenFile("/www/index.html");
         k.FillFile(fd, 311);
         uint64_t sock = k.Call(Sys::kSocket);
         for (int request = 0; request < 2000; ++request) {
           k.Call(Sys::kRecv, sock, k.user(8192), 128);  // Request (empty).
           k.Call(Sys::kLseek, fd, 0, 0);
           k.Call(Sys::kRead, fd, k.user(4096), 311);
           k.Call(Sys::kSend, sock, k.user(4096), 311);
           k.Call(Sys::kRecv, sock, k.user(8192), 311);  // Drain loopback.
         }
         k.Call(Sys::kClose, fd);
         k.Call(Sys::kClose, sock);
       }});
  return apps;
}

void Run() {
  std::printf(
      "Table 5: application latency increase vs Linux-native (median of "
      "runs)\n\n");
  Table table({"Application", "Sys profile", "Native (ms)", "SVA gcc (%)",
               "SVA llvm (%)", "SVA Safe (%)"});
  for (const App& app : BuildApps()) {
    // Boot all four kernels and interleave runs (see table7).
    std::vector<std::unique_ptr<BootedKernel>> kernels;
    for (int m = 0; m < 4; ++m) {
      kernels.push_back(std::make_unique<BootedKernel>(kAllModes[m]));
      BootedKernel& k = *kernels.back();
      (void)k.k().PokeUserString(k.user(0), "/dev/null");
      k.Call(Sys::kOpen, k.user(0), 0);  // fd 0: /dev/null sink.
      // Prepare a 4k input file for readers.
      uint64_t fd = k.OpenFile("/bench/input");
      k.FillFile(fd, 4096);
      k.Call(Sys::kClose, fd);
      app.run(k);  // Warm up.
    }
    std::vector<double> samples[4];
    for (int rep = 0; rep < app.repetitions; ++rep) {
      for (int m = 0; m < 4; ++m) {
        samples[m].push_back(TimeOnceUs([&] { app.run(*kernels[m]); }));
      }
    }
    double ms[4];
    for (int m = 0; m < 4; ++m) {
      std::sort(samples[m].begin(), samples[m].end());
      ms[m] = samples[m][samples[m].size() / 2] / 1000.0;
    }
    table.AddRow({app.name, app.sys_profile, Fmt("%.2f", ms[0]),
                  Fmt("%.1f", OverheadPct(ms[0], ms[1])),
                  Fmt("%.1f", OverheadPct(ms[0], ms[2])),
                  Fmt("%.1f", OverheadPct(ms[0], ms[3]))});
    for (int m = 0; m < 4; ++m) {
      JsonReport::Get().Add(app.name, ms[m], "ms",
                            kernel::KernelModeName(kAllModes[m]));
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: compute-bound apps (bzip2/lame/gcc) show "
      "small overheads;\nsyscall-heavy apps (ldd, small-file thttpd) show "
      "the largest, dominated by the\nsafety checks rather than the SVA-OS "
      "port.\n");
}

}  // namespace
}  // namespace sva::bench

int main(int argc, char** argv) {
  sva::bench::JsonReport::Get().Init(&argc, argv, "table5_app_latency");
  sva::bench::Run();
  return sva::bench::JsonReport::Get().Finish();
}
